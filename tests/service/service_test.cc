// In-process (socket-free) coverage of the broker service: every protocol
// command is exercised through service::Service directly, which is the
// same code path the TCP server drives.
#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "broker/selection_policy.h"
#include "estimate/registry.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/serialize.h"
#include "represent/store.h"
#include "util/engine_hash.h"
#include "util/string_util.h"

namespace useful::service {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("useful_service_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
    WriteRep("sports", {"football goal referee", "football stadium crowd",
                        "goal keeper shared"});
    WriteRep("science", {"quantum particle physics",
                         "particle collider shared", "quantum entanglement"});
    WriteRep("cooking", {"recipe flour oven", "oven temperature shared",
                         "recipe butter sugar"});
    auto service = Service::Create(&analyzer_, MakeOptions());
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  ServiceOptions MakeOptions() {
    ServiceOptions options;
    for (const char* name : {"sports", "science", "cooking"}) {
      options.representative_paths.push_back(RepPath(name));
    }
    return options;
  }

  std::string RepPath(const std::string& name) {
    return (dir_ / (name + ".rep")).string();
  }

  void WriteRep(const std::string& name, std::vector<std::string> docs) {
    ir::SearchEngine engine(name, &analyzer_);
    int i = 0;
    for (const std::string& text : docs) {
      ASSERT_TRUE(engine.Add({name + "/d" + std::to_string(i++), text}).ok());
    }
    ASSERT_TRUE(engine.Finalize().ok());
    auto rep = represent::BuildRepresentative(engine);
    ASSERT_TRUE(rep.ok());
    ASSERT_TRUE(
        represent::SaveRepresentative(rep.value(), RepPath(name)).ok());
  }

  text::Analyzer analyzer_;
  std::filesystem::path dir_;
  std::unique_ptr<Service> service_;
};

TEST_F(ServiceTest, LoadsAllEngines) {
  EXPECT_EQ(service_->num_engines(), 3u);
}

TEST_F(ServiceTest, CreateFailsOnMissingFile) {
  ServiceOptions options;
  options.representative_paths.push_back((dir_ / "nope.rep").string());
  auto service = Service::Create(&analyzer_, options);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), Status::Code::kIOError);
}

TEST_F(ServiceTest, CreateRequiresPaths) {
  EXPECT_FALSE(Service::Create(&analyzer_, ServiceOptions{}).ok());
  EXPECT_FALSE(Service::Create(nullptr, MakeOptions()).ok());
}

// Acceptance: the service's ROUTE answers equal the one-shot CLI path —
// the same RankEngines output under the paper's selection rule.
TEST_F(ServiceTest, RouteMatchesDirectBrokerSelection) {
  auto reply = service_->Execute("ROUTE subrange 0.1 0 football");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();

  auto estimator = estimate::MakeEstimator("subrange");
  ASSERT_TRUE(estimator.ok());
  ir::Query q = ir::ParseQuery(analyzer_, "football");
  auto expected = broker::ThresholdPolicy().Apply(
      service_->snapshot()->RankEngines(q, 0.1, *estimator.value()));

  ASSERT_EQ(reply.payload.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(reply.payload[i],
              StringPrintf("%s %.17g %.17g", expected[i].engine.c_str(),
                           expected[i].estimate.no_doc,
                           expected[i].estimate.avg_sim));
  }
  ASSERT_FALSE(reply.payload.empty());
  EXPECT_EQ(reply.payload[0].substr(0, 6), "sports");
}

TEST_F(ServiceTest, EstimateReturnsEveryEngine) {
  auto reply = service_->Execute("ESTIMATE subrange 0.1 shared");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.payload.size(), 3u);  // no policy filtering
}

TEST_F(ServiceTest, TopkCapsTheSelection) {
  auto uncapped = service_->Execute("ROUTE subrange 0.01 0 shared");
  ASSERT_TRUE(uncapped.status.ok());
  ASSERT_GE(uncapped.payload.size(), 2u);
  auto capped = service_->Execute("ROUTE subrange 0.01 1 shared");
  ASSERT_TRUE(capped.status.ok());
  EXPECT_EQ(capped.payload.size(), 1u);
  EXPECT_EQ(capped.payload[0], uncapped.payload[0]);
}

TEST_F(ServiceTest, RepeatedQueryHitsCacheAndPolicyDoesNotSplitIt) {
  // The cacheable unit is one (engine, query) estimate, so every count
  // below moves in steps of the fixture's 3 engines.
  auto first = service_->Execute("ROUTE subrange 0.1 0 football");
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(service_->cache().counters().hits, 0u);
  EXPECT_EQ(service_->cache().counters().misses, 3u);

  auto second = service_->Execute("ROUTE subrange 0.1 0 football");
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(service_->cache().counters().hits, 3u);
  EXPECT_EQ(second.payload, first.payload);

  // Same key despite different topk / command: policy applies post-cache.
  ASSERT_TRUE(service_->Execute("ROUTE subrange 0.1 2 football").status.ok());
  ASSERT_TRUE(service_->Execute("ESTIMATE subrange 0.1 football").status.ok());
  EXPECT_EQ(service_->cache().counters().hits, 9u);
  EXPECT_EQ(service_->cache().counters().misses, 3u);

  // Different threshold is a different key.
  ASSERT_TRUE(service_->Execute("ROUTE subrange 0.2 0 football").status.ok());
  EXPECT_EQ(service_->cache().counters().misses, 6u);
}

TEST_F(ServiceTest, CachedAnswersAreByteIdenticalToUncached) {
  auto uncached = service_->Execute("ESTIMATE adaptive 0.15 shared recipe");
  auto cached = service_->Execute("ESTIMATE adaptive 0.15 shared recipe");
  ASSERT_TRUE(uncached.status.ok());
  ASSERT_TRUE(cached.status.ok());
  EXPECT_EQ(uncached.payload, cached.payload);
  EXPECT_EQ(service_->cache().counters().hits, 3u);  // one per engine
}

TEST_F(ServiceTest, UnknownEstimatorListsRegisteredNames) {
  auto reply = service_->Execute("ROUTE bogus 0.1 0 football");
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), Status::Code::kNotFound);
  for (const std::string& name : estimate::KnownEstimators()) {
    EXPECT_NE(reply.status.message().find(name), std::string::npos)
        << "error should list " << name;
  }
}

TEST_F(ServiceTest, EmptyQueryAfterAnalysisErrors) {
  auto reply = service_->Execute("ROUTE subrange 0.1 0 the of and");
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), Status::Code::kInvalidArgument);
}

TEST_F(ServiceTest, UnknownCommandErrors) {
  auto reply = service_->Execute("FETCH stuff");
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), Status::Code::kInvalidArgument);
}

TEST_F(ServiceTest, StatsRendersCountersAndLatencies) {
  ASSERT_TRUE(service_->Execute("ROUTE subrange 0.1 0 football").status.ok());
  ASSERT_TRUE(service_->Execute("ROUTE subrange 0.1 0 football").status.ok());
  service_->Execute("ROUTE bogus 0.1 0 football");  // one error
  auto reply = service_->Execute("STATS");
  ASSERT_TRUE(reply.status.ok());

  auto find = [&](const std::string& key) -> std::string {
    for (const std::string& line : reply.payload) {
      if (line.rfind(key + " ", 0) == 0) return line.substr(key.size() + 1);
    }
    return "<missing>";
  };
  // The snapshot is taken before the in-flight STATS is recorded, so it
  // covers exactly the three ROUTEs that preceded it.
  EXPECT_EQ(find("requests_total"), "3");
  EXPECT_EQ(find("errors_total"), "1");
  EXPECT_EQ(find("engines"), "3");
  EXPECT_EQ(find("reloads"), "0");
  EXPECT_EQ(find("cache_hits"), "3");  // per-engine entries, 3 engines
  EXPECT_EQ(find("cache_misses"), "3");
  EXPECT_EQ(find("cmd_route_count"), "3");
  EXPECT_EQ(find("cmd_stats_count"), "0");
  EXPECT_NE(find("cmd_route_p50_us"), "<missing>");
  EXPECT_NE(find("cmd_route_p99_us"), "<missing>");

  // A second STATS sees the first one counted.
  reply = service_->Execute("STATS");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_EQ(find("requests_total"), "4");
  EXPECT_EQ(find("cmd_stats_count"), "1");
}

TEST_F(ServiceTest, QuitRequestsShutdownAndCloses) {
  auto reply = service_->Execute("QUIT");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_TRUE(reply.close_connection);
  EXPECT_TRUE(reply.shutdown_server);
  EXPECT_TRUE(reply.payload.empty());
}

TEST_F(ServiceTest, ReloadSwapsRepresentativesAndInvalidatesCache) {
  auto before = service_->Execute("ROUTE subrange 0.1 0 volleyball");
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.payload.empty());  // term unknown to every engine

  // The old snapshot must keep working for in-flight requests even after
  // the swap.
  auto old_snapshot = service_->snapshot();

  WriteRep("sports", {"volleyball net serve", "volleyball beach game",
                      "goal keeper shared"});
  auto reply = service_->Execute("RELOAD");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  ASSERT_EQ(reply.payload.size(), 1u);
  EXPECT_EQ(reply.payload[0], "engines 3");

  auto after = service_->Execute("ROUTE subrange 0.1 0 volleyball");
  ASSERT_TRUE(after.status.ok());
  ASSERT_FALSE(after.payload.empty());
  EXPECT_EQ(after.payload[0].substr(0, 6), "sports");

  // The cache did not leak the pre-reload (empty) answer: the second
  // volleyball ROUTE was a fresh miss under the new generation.
  EXPECT_EQ(service_->cache().counters().hits, 0u);
  EXPECT_EQ(service_->stats().reloads(), 1u);

  // Old snapshot still answers from the pre-reload world.
  ir::Query q = ir::ParseQuery(analyzer_, "volleyball");
  auto estimator = estimate::MakeEstimator("subrange");
  ASSERT_TRUE(estimator.ok());
  EXPECT_TRUE(old_snapshot->SelectEngines(q, 0.1, *estimator.value()).empty());
}

TEST_F(ServiceTest, FailedReloadKeepsServingOldSnapshot) {
  ASSERT_TRUE(service_->Execute("ROUTE subrange 0.1 0 football").status.ok());
  // Corrupt one file on disk.
  {
    std::ofstream out(RepPath("science"), std::ios::binary | std::ios::trunc);
    out << "not a representative";
  }
  auto reply = service_->Execute("RELOAD");
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), Status::Code::kCorruption);
  EXPECT_NE(reply.status.message().find("science"), std::string::npos);

  // Service still answers with the previous snapshot.
  EXPECT_EQ(service_->num_engines(), 3u);
  auto after = service_->Execute("ROUTE subrange 0.1 0 football");
  ASSERT_TRUE(after.status.ok());
  ASSERT_FALSE(after.payload.empty());
  EXPECT_EQ(service_->stats().reloads(), 0u);
}

// --- Live churn: ADD / DROP / UPDATE -----------------------------------

// Acceptance: adding an engine must not cost the others their cache
// entries — the per-engine generations of untouched engines never move,
// so a repeated query hits for every pre-existing engine and misses only
// for the newcomer.
TEST_F(ServiceTest, AddKeepsUntouchedEnginesCached) {
  auto before = service_->Execute("ESTIMATE subrange 0.1 shared");
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(service_->cache().counters().misses, 3u);

  WriteRep("history", {"empire treaty shared", "dynasty empire war"});
  auto reply = service_->Execute("ADD " + RepPath("history"));
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  ASSERT_EQ(reply.payload.size(), 2u);
  EXPECT_EQ(reply.payload[0], "added 1");
  EXPECT_EQ(reply.payload[1], "engines 4");
  EXPECT_EQ(service_->num_engines(), 4u);
  EXPECT_EQ(service_->stats().engines_added(), 1u);
  EXPECT_EQ(service_->snapshot_epoch(), 1u);

  auto after = service_->Execute("ESTIMATE subrange 0.1 shared");
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.payload.size(), 4u);
  // Scoped invalidation: 3 hits (the untouched engines), 1 fresh miss
  // (the newcomer) — not 0 hits and 4 misses, which is what a global
  // generation would produce.
  EXPECT_EQ(service_->cache().counters().hits, 3u);
  EXPECT_EQ(service_->cache().counters().misses, 4u);

  // The untouched engines' reply lines are byte-identical.
  for (const std::string& line : before.payload) {
    EXPECT_NE(std::find(after.payload.begin(), after.payload.end(), line),
              after.payload.end())
        << "pre-ADD line missing from post-ADD reply: " << line;
  }
}

TEST_F(ServiceTest, AddOfDuplicateEngineFailsAtomically) {
  auto reply = service_->Execute("ADD " + RepPath("sports"));
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(reply.status.message().find("sports"), std::string::npos);
  // Nothing changed: no new engines, no epoch bump, old snapshot serves.
  EXPECT_EQ(service_->num_engines(), 3u);
  EXPECT_EQ(service_->snapshot_epoch(), 0u);
  EXPECT_TRUE(service_->Execute("ESTIMATE subrange 0.1 shared").status.ok());
}

TEST_F(ServiceTest, AddOfMissingFileFailsWithPath) {
  auto reply = service_->Execute("ADD " + (dir_ / "nope.rep").string());
  ASSERT_FALSE(reply.status.ok());
  EXPECT_EQ(reply.status.code(), Status::Code::kIOError);
  EXPECT_NE(reply.status.message().find("nope.rep"), std::string::npos);
  EXPECT_EQ(service_->num_engines(), 3u);
}

TEST_F(ServiceTest, DropSweepsOnlyTheDroppedEnginesEntries) {
  ASSERT_TRUE(service_->Execute("ESTIMATE subrange 0.1 shared").status.ok());
  EXPECT_EQ(service_->cache().counters().misses, 3u);

  auto reply = service_->Execute("DROP cooking");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  ASSERT_EQ(reply.payload.size(), 2u);
  EXPECT_EQ(reply.payload[0], "dropped 1");
  EXPECT_EQ(reply.payload[1], "engines 2");
  EXPECT_EQ(service_->stats().engines_dropped(), 1u);
  // Exactly the dropped engine's entry was swept — not the others'.
  EXPECT_EQ(service_->cache().counters().expired, 1u);
  EXPECT_EQ(service_->cache().counters().entries, 2u);

  auto after = service_->Execute("ESTIMATE subrange 0.1 shared");
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.payload.size(), 2u);
  for (const std::string& line : after.payload) {
    EXPECT_NE(line.substr(0, 7), "cooking");
  }
  // The survivors answered entirely from cache.
  EXPECT_EQ(service_->cache().counters().hits, 2u);
  EXPECT_EQ(service_->cache().counters().misses, 3u);

  auto again = service_->Execute("DROP cooking");
  ASSERT_FALSE(again.status.ok());
  EXPECT_EQ(again.status.code(), Status::Code::kNotFound);
}

TEST_F(ServiceTest, UpdateReplacesOneEngineAndKeepsOthersCached) {
  auto before = service_->Execute("ESTIMATE subrange 0.1 volleyball");
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(service_->cache().counters().misses, 3u);

  WriteRep("sports", {"volleyball net serve", "volleyball beach game",
                      "goal keeper shared"});
  auto reply = service_->Execute("UPDATE " + RepPath("sports"));
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  ASSERT_EQ(reply.payload.size(), 2u);
  EXPECT_EQ(reply.payload[0], "updated 1");
  EXPECT_EQ(reply.payload[1], "engines 3");
  EXPECT_EQ(service_->stats().engines_updated(), 1u);

  auto after = service_->Execute("ESTIMATE subrange 0.1 volleyball");
  ASSERT_TRUE(after.status.ok());
  // science and cooking hit their old entries; only sports recomputed —
  // and against the NEW representative, so volleyball now scores.
  EXPECT_EQ(service_->cache().counters().hits, 2u);
  EXPECT_EQ(service_->cache().counters().misses, 4u);
  bool sports_scored = false;
  for (const std::string& line : after.payload) {
    if (line.substr(0, 7) == "sports " && line.find(" 0 0") == std::string::npos) {
      sports_scored = true;
    }
  }
  EXPECT_TRUE(sports_scored) << "UPDATE did not swap in the new rep";
}

TEST_F(ServiceTest, UpdateOfUnregisteredEnginesIsANoOp) {
  WriteRep("newbie", {"totally new content here"});
  auto reply = service_->Execute("UPDATE " + RepPath("newbie"));
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  ASSERT_EQ(reply.payload.size(), 2u);
  EXPECT_EQ(reply.payload[0], "updated 0");
  EXPECT_EQ(reply.payload[1], "engines 3");
  // A no-op must not bump the epoch or sweep anything.
  EXPECT_EQ(service_->snapshot_epoch(), 0u);
  EXPECT_EQ(service_->stats().engines_updated(), 0u);
}

TEST_F(ServiceTest, AddFiltersByShardOwnership) {
  WriteRep("history", {"empire treaty dynasty"});
  std::size_t owner = util::ShardForEngine("history", 2);
  for (std::size_t shard = 0; shard < 2; ++shard) {
    ServiceOptions options = MakeOptions();
    options.num_shards = 2;
    options.shard_index = shard;
    auto service = Service::Create(&analyzer_, std::move(options));
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    auto reply = service.value()->Execute("ADD " + RepPath("history"));
    ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
    if (shard == owner) {
      EXPECT_EQ(reply.payload[0], "added 1");
      EXPECT_EQ(service.value()->num_engines(), 4u);
    } else {
      EXPECT_EQ(reply.payload[0], "added 0");
      EXPECT_EQ(service.value()->num_engines(), 3u);
    }
  }
}

// Packed-snapshot coverage: the service sniffs URPZ files per path, loads
// them zero-copy, mixes them freely with legacy URP1 files, and reports
// the packed-store gauges.
class PackedServiceTest : public ServiceTest {
 protected:
  std::string StorePath() { return (dir_ / "packed.urpz").string(); }

  // Packs `names` (already indexed by WriteRep-style docs) into one URPZ
  // store at StorePath().
  void PackEngines(
      const std::vector<std::pair<std::string, std::vector<std::string>>>&
          engines) {
    std::vector<represent::Representative> reps;
    for (const auto& [name, docs] : engines) {
      ir::SearchEngine engine(name, &analyzer_);
      int i = 0;
      for (const std::string& text : docs) {
        ASSERT_TRUE(
            engine.Add({name + "/d" + std::to_string(i++), text}).ok());
      }
      ASSERT_TRUE(engine.Finalize().ok());
      auto rep = represent::BuildRepresentative(engine);
      ASSERT_TRUE(rep.ok());
      reps.push_back(std::move(rep).value());
    }
    std::vector<const represent::Representative*> ptrs;
    for (const auto& r : reps) ptrs.push_back(&r);
    ASSERT_TRUE(represent::PackStoreToFile(ptrs, StorePath()).ok());
  }
};

TEST_F(PackedServiceTest, MixedSnapshotLoadsPackedAndLegacyPaths) {
  PackEngines({{"history", {"empire treaty dynasty", "treaty shared"}},
               {"music", {"guitar melody chord", "melody shared"}}});
  ServiceOptions options = MakeOptions();
  options.representative_paths.push_back(StorePath());
  auto service = Service::Create(&analyzer_, std::move(options));
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_EQ(service.value()->num_engines(), 5u);
  EXPECT_EQ(service.value()->stats().representative_packed_engines(), 2u);
  EXPECT_GT(service.value()->stats().representative_packed_bytes(), 0u);

  // Every engine — packed or legacy — answers on the shared term.
  auto reply = service.value()->Execute("ESTIMATE subrange 0.05 shared");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.payload.size(), 5u);

  // The gauges flow into METRICS.
  auto metrics = service.value()->Execute("METRICS");
  ASSERT_TRUE(metrics.status.ok());
  bool saw_engines = false, saw_bytes = false;
  for (const std::string& line : metrics.payload) {
    if (line == "useful_representative_packed_engines 2") saw_engines = true;
    if (line.rfind("useful_representative_packed_bytes ", 0) == 0 &&
        line != "useful_representative_packed_bytes 0") {
      saw_bytes = true;
    }
  }
  EXPECT_TRUE(saw_engines);
  EXPECT_TRUE(saw_bytes);
}

TEST_F(PackedServiceTest, ReloadSwapsPackedStoreInPlace) {
  PackEngines({{"history", {"empire treaty dynasty", "treaty shared"}}});
  ServiceOptions options = MakeOptions();
  options.representative_paths.push_back(StorePath());
  auto created = Service::Create(&analyzer_, std::move(options));
  ASSERT_TRUE(created.ok());
  std::unique_ptr<Service> service = std::move(created).value();

  auto before = service->Execute("ROUTE subrange 0.1 0 violin");
  ASSERT_TRUE(before.status.ok());
  EXPECT_TRUE(before.payload.empty());

  // Keep the pre-reload snapshot alive across the swap: its mapping must
  // stay valid even after the file is replaced on disk.
  auto old_snapshot = service->snapshot();

  // Repack with an extra engine; RELOAD must pick it up via mmap swap.
  PackEngines({{"history", {"empire treaty dynasty", "treaty shared"}},
               {"strings", {"violin bow rosin", "violin concerto"}}});
  auto reply = service->Execute("RELOAD");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  ASSERT_EQ(reply.payload.size(), 1u);
  EXPECT_EQ(reply.payload[0], "engines 5");
  EXPECT_EQ(service->stats().representative_packed_engines(), 2u);

  auto after = service->Execute("ROUTE subrange 0.1 0 violin");
  ASSERT_TRUE(after.status.ok());
  ASSERT_FALSE(after.payload.empty());
  EXPECT_EQ(after.payload[0].substr(0, 7), "strings");

  // The old snapshot still resolves queries against the old mapping.
  ir::Query q = ir::ParseQuery(analyzer_, "treaty");
  auto estimator = estimate::MakeEstimator("subrange");
  ASSERT_TRUE(estimator.ok());
  EXPECT_FALSE(
      old_snapshot->RankEngines(q, 0.05, *estimator.value()).empty());
}

TEST_F(PackedServiceTest, CorruptPackedFileFailsLoudWithPath) {
  PackEngines({{"history", {"empire treaty dynasty"}}});
  // Garble the engine header's num_fields (file offset 36) so validation
  // trips while the URPZ magic stays intact.
  {
    std::fstream f(StorePath(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(36);
    f.put(static_cast<char>(0xff));
  }
  ServiceOptions options = MakeOptions();
  options.representative_paths.push_back(StorePath());
  auto service = Service::Create(&analyzer_, std::move(options));
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.status().message().find("packed.urpz"),
            std::string::npos);
}

}  // namespace
}  // namespace useful::service
