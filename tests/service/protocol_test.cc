#include "service/protocol.h"

#include <gtest/gtest.h>

namespace useful::service {
namespace {

TEST(ProtocolTest, ParsesRoute) {
  auto r = ParseRequest("ROUTE subrange 0.2 3 quick brown fox");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().kind, CommandKind::kRoute);
  EXPECT_EQ(r.value().estimator, "subrange");
  EXPECT_DOUBLE_EQ(r.value().threshold, 0.2);
  EXPECT_EQ(r.value().topk, 3u);
  EXPECT_EQ(r.value().query_text, "quick brown fox");
}

TEST(ProtocolTest, ParsesEstimateWithoutTopk) {
  auto r = ParseRequest("ESTIMATE basic 0.35 fox");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind, CommandKind::kEstimate);
  EXPECT_EQ(r.value().estimator, "basic");
  EXPECT_DOUBLE_EQ(r.value().threshold, 0.35);
  EXPECT_EQ(r.value().topk, 0u);
  EXPECT_EQ(r.value().query_text, "fox");
}

TEST(ProtocolTest, CollapsesWhitespaceInQuery) {
  auto r = ParseRequest("ROUTE subrange 0.2 0   fox \t dog ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().query_text, "fox dog");
}

TEST(ProtocolTest, ParsesArgumentFreeCommands) {
  EXPECT_EQ(ParseRequest("STATS").value().kind, CommandKind::kStats);
  EXPECT_EQ(ParseRequest("METRICS").value().kind, CommandKind::kMetrics);
  EXPECT_EQ(ParseRequest("RELOAD").value().kind, CommandKind::kReload);
  EXPECT_EQ(ParseRequest("QUIT").value().kind, CommandKind::kQuit);
}

TEST(ProtocolTest, RejectsArgumentsOnBareCommands) {
  EXPECT_FALSE(ParseRequest("STATS now").ok());
  EXPECT_FALSE(ParseRequest("METRICS all").ok());
  EXPECT_FALSE(ParseRequest("QUIT 1").ok());
}

TEST(ProtocolTest, ParsesSlowlogWithOptionalCount) {
  auto bare = ParseRequest("SLOWLOG");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_EQ(bare.value().kind, CommandKind::kSlowlog);
  EXPECT_EQ(bare.value().slowlog_n, 0u);  // 0 = no cap

  auto counted = ParseRequest("SLOWLOG 5");
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  EXPECT_EQ(counted.value().kind, CommandKind::kSlowlog);
  EXPECT_EQ(counted.value().slowlog_n, 5u);
}

TEST(ProtocolTest, RejectsBadSlowlogCounts) {
  EXPECT_FALSE(ParseRequest("SLOWLOG -1").ok());
  EXPECT_FALSE(ParseRequest("SLOWLOG +2").ok());
  EXPECT_FALSE(ParseRequest("SLOWLOG 7abc").ok());
  EXPECT_FALSE(ParseRequest("SLOWLOG 5 extra").ok());
  EXPECT_FALSE(
      ParseRequest("SLOWLOG " + std::to_string(kMaxSlowlogEntries + 1)).ok());
  auto at_cap =
      ParseRequest("SLOWLOG " + std::to_string(kMaxSlowlogEntries));
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_EQ(at_cap.value().slowlog_n, kMaxSlowlogEntries);
}

TEST(ProtocolTest, ParsesChurnVerbsWithOneArgument) {
  auto add = ParseRequest("ADD /packs/extra.urpz");
  ASSERT_TRUE(add.ok()) << add.status().ToString();
  EXPECT_EQ(add.value().kind, CommandKind::kAdd);
  EXPECT_EQ(add.value().argument, "/packs/extra.urpz");

  auto drop = ParseRequest("DROP aurora");
  ASSERT_TRUE(drop.ok()) << drop.status().ToString();
  EXPECT_EQ(drop.value().kind, CommandKind::kDrop);
  EXPECT_EQ(drop.value().argument, "aurora");

  auto update = ParseRequest("UPDATE reps/extra.rep");
  ASSERT_TRUE(update.ok()) << update.status().ToString();
  EXPECT_EQ(update.value().kind, CommandKind::kUpdate);
  EXPECT_EQ(update.value().argument, "reps/extra.rep");

  // Interior whitespace collapses like everywhere in the protocol.
  auto padded = ParseRequest("  DROP \t aurora \r");
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded.value().argument, "aurora");
}

TEST(ProtocolTest, ChurnVerbsNeedExactlyOneArgument) {
  // Spaces can't be escaped in this protocol: "ADD a b" is ambiguous,
  // not a path with a space, so it is rejected instead of re-joined.
  for (const char* bad : {"ADD", "DROP", "UPDATE", "ADD a b", "DROP a b",
                          "UPDATE a b"}) {
    auto r = ParseRequest(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_NE(r.status().message().find("needs exactly one argument"),
              std::string::npos)
        << r.status().ToString();
  }
  // The error names the expected operand kind per verb.
  EXPECT_NE(ParseRequest("DROP").status().message().find("<engine>"),
            std::string::npos);
  EXPECT_NE(ParseRequest("ADD").status().message().find("<path>"),
            std::string::npos);
  EXPECT_NE(ParseRequest("UPDATE").status().message().find("<path>"),
            std::string::npos);
}

TEST(ProtocolTest, RejectsEmptyAndUnknown) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("   ").ok());
  auto r = ParseRequest("FETCH foo");
  ASSERT_FALSE(r.ok());
  // The error teaches the protocol.
  EXPECT_NE(r.status().message().find("ROUTE"), std::string::npos);
  EXPECT_NE(r.status().message().find("QUIT"), std::string::npos);
}

TEST(ProtocolTest, RejectsBadNumbers) {
  EXPECT_FALSE(ParseRequest("ROUTE subrange nan 0 fox").ok());
  EXPECT_FALSE(ParseRequest("ROUTE subrange -0.1 0 fox").ok());
  EXPECT_FALSE(ParseRequest("ROUTE subrange 0.2 many fox").ok());
  EXPECT_FALSE(ParseRequest("ROUTE subrange 0.2x 0 fox").ok());
}

TEST(ProtocolTest, RejectsSignedAndOverflowingTopk) {
  // strtoul would silently wrap "-1" to 2^64-1; the parser must not.
  EXPECT_FALSE(ParseRequest("ROUTE basic 0.2 -1 q").ok());
  EXPECT_FALSE(ParseRequest("ROUTE basic 0.2 +1 q").ok());
  EXPECT_FALSE(ParseRequest("ROUTE basic 0.2 -0 q").ok());
  // ERANGE overflow (way past 2^64) must be detected, not saturated.
  EXPECT_FALSE(
      ParseRequest("ROUTE basic 0.2 99999999999999999999999999 q").ok());
}

TEST(ProtocolTest, CapsTopkAtSaneBound) {
  auto at_cap = ParseRequest("ROUTE basic 0.2 " + std::to_string(kMaxTopK) +
                             " q");
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_EQ(at_cap.value().topk, kMaxTopK);
  EXPECT_FALSE(
      ParseRequest("ROUTE basic 0.2 " + std::to_string(kMaxTopK + 1) + " q")
          .ok());
}

TEST(ProtocolTest, RejectsMissingQuery) {
  EXPECT_FALSE(ParseRequest("ROUTE subrange 0.2 0").ok());
  EXPECT_FALSE(ParseRequest("ESTIMATE subrange 0.2").ok());
}

TEST(ProtocolTest, ResponseHeaderRoundTrip) {
  auto ok = ParseResponseHeader(FormatOkHeader(17));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().ok);
  EXPECT_EQ(ok.value().payload_lines, 17u);

  auto err = ParseResponseHeader(
      FormatErrorHeader(Status::NotFound("no such thing")));
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err.value().ok);
  EXPECT_EQ(err.value().error, "NotFound: no such thing");
}

TEST(ProtocolTest, RejectsMalformedResponseHeaders) {
  EXPECT_FALSE(ParseResponseHeader("").ok());
  EXPECT_FALSE(ParseResponseHeader("OK").ok());
  EXPECT_FALSE(ParseResponseHeader("OK x").ok());
  EXPECT_FALSE(ParseResponseHeader("HELLO 3").ok());
}

TEST(ProtocolTest, RejectsSignedAndOverflowingResponseHeaders) {
  // A corrupt or hostile "OK <n>" header must not drive a client into
  // reading (effectively) forever.
  EXPECT_FALSE(ParseResponseHeader("OK -1").ok());
  EXPECT_FALSE(ParseResponseHeader("OK +2").ok());
  EXPECT_FALSE(ParseResponseHeader("OK  7").ok());  // strtoul ate spaces
  EXPECT_FALSE(ParseResponseHeader("OK 99999999999999999999999999").ok());
  EXPECT_FALSE(ParseResponseHeader(
                   "OK " + std::to_string(kMaxPayloadLines + 1))
                   .ok());
  auto at_cap =
      ParseResponseHeader("OK " + std::to_string(kMaxPayloadLines));
  ASSERT_TRUE(at_cap.ok());
  EXPECT_EQ(at_cap.value().payload_lines, kMaxPayloadLines);
}

TEST(ProtocolTest, CommandNamesAreStable) {
  EXPECT_STREQ(CommandName(CommandKind::kRoute), "route");
  EXPECT_STREQ(CommandName(CommandKind::kEstimate), "estimate");
  EXPECT_STREQ(CommandName(CommandKind::kStats), "stats");
  EXPECT_STREQ(CommandName(CommandKind::kMetrics), "metrics");
  EXPECT_STREQ(CommandName(CommandKind::kSlowlog), "slowlog");
  EXPECT_STREQ(CommandName(CommandKind::kReload), "reload");
  EXPECT_STREQ(CommandName(CommandKind::kAdd), "add");
  EXPECT_STREQ(CommandName(CommandKind::kDrop), "drop");
  EXPECT_STREQ(CommandName(CommandKind::kUpdate), "update");
  EXPECT_STREQ(CommandName(CommandKind::kQuit), "quit");
}

}  // namespace
}  // namespace useful::service
