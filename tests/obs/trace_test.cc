#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace useful::obs {
namespace {

TEST(StageNameTest, EveryStageHasAName) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    std::string name = StageName(static_cast<Stage>(i));
    EXPECT_FALSE(name.empty());
    for (char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_') << name;
    }
  }
  EXPECT_STREQ("dispatch", StageName(Stage::kDispatch));
  EXPECT_STREQ("parse", StageName(Stage::kParse));
  EXPECT_STREQ("cache", StageName(Stage::kCache));
  EXPECT_STREQ("estimate", StageName(Stage::kEstimate));
  EXPECT_STREQ("rank", StageName(Stage::kRank));
  EXPECT_STREQ("write", StageName(Stage::kWrite));
}

TEST(TraceTest, DefaultConstructedIsUnsampled) {
  Trace trace;
  EXPECT_FALSE(trace.sampled());
}

TEST(TraceTest, UnsampledMutatorsAreNoOps) {
  Trace trace(false);
  trace.AddStageMicros(Stage::kParse, 123);
  trace.SetQuery("hello");
  trace.SetEstimator("subrange");
  trace.SetThreshold(0.7);
  trace.SetCacheHit(true);
  trace.SetEnginesSelected(4);
  trace.SetTotalMicros(999);
  EXPECT_EQ(0u, trace.stage_micros(Stage::kParse));
  EXPECT_FALSE(trace.stage_touched(Stage::kParse));
  EXPECT_FALSE(trace.has_query());
  EXPECT_EQ("", trace.estimator());
  EXPECT_EQ(0.0, trace.threshold());
  EXPECT_FALSE(trace.cache_hit());
  EXPECT_EQ(0u, trace.engines_selected());
  EXPECT_EQ(0u, trace.total_micros());
}

TEST(TraceTest, SampledRecordsStagesAndMetadata) {
  Trace trace(true);
  trace.AddStageMicros(Stage::kEstimate, 40);
  trace.AddStageMicros(Stage::kEstimate, 2);  // accumulates
  trace.AddStageMicros(Stage::kRank, 0);      // touched even at 0us
  trace.SetQuery("fox dog");
  trace.SetEstimator("subrange");
  trace.SetThreshold(0.25);
  trace.SetCacheHit(true);
  trace.SetEnginesSelected(3);
  trace.SetTotalMicros(57);

  EXPECT_EQ(42u, trace.stage_micros(Stage::kEstimate));
  EXPECT_TRUE(trace.stage_touched(Stage::kEstimate));
  EXPECT_TRUE(trace.stage_touched(Stage::kRank));
  EXPECT_FALSE(trace.stage_touched(Stage::kParse));
  EXPECT_EQ("fox dog", trace.query());
  EXPECT_EQ("subrange", trace.estimator());
  EXPECT_EQ(0.25, trace.threshold());
  EXPECT_TRUE(trace.cache_hit());
  EXPECT_EQ(3u, trace.engines_selected());
  EXPECT_EQ(57u, trace.total_micros());
}

TEST(TraceTest, QueryTruncatesAndNormalizesControlBytes) {
  Trace trace(true);
  std::string raw = "bad\r\nquery\tterm\x01";
  raw += '\0';
  trace.SetQuery(raw);
  EXPECT_EQ("bad__query_term__", trace.query());

  std::string longq(Trace::kMaxQueryBytes + 50, 'x');
  trace.SetQuery(longq);
  EXPECT_EQ(Trace::kMaxQueryBytes, trace.query().size());
}

TEST(TraceTest, EstimatorTruncates) {
  Trace trace(true);
  std::string name(Trace::kMaxEstimatorBytes + 5, 'e');
  trace.SetEstimator(name);
  EXPECT_EQ(Trace::kMaxEstimatorBytes, trace.estimator().size());
}

TEST(TraceTest, SpanAccumulatesElapsedTime) {
  Trace trace(true);
  {
    Trace::Span span = trace.StartSpan(Stage::kSerialize);
    // Do a little work so the span is >= 0 (usually 0us; the assertion
    // below only needs touched, not a positive duration).
  }
  EXPECT_TRUE(trace.stage_touched(Stage::kSerialize));
}

TEST(TraceTest, NullSafeStaticSpanFactory) {
  // Must not crash; also a no-op on an unsampled trace.
  { Trace::Span span = Trace::StartSpan(nullptr, Stage::kWrite); }
  Trace unsampled(false);
  { Trace::Span span = Trace::StartSpan(&unsampled, Stage::kWrite); }
  EXPECT_FALSE(unsampled.stage_touched(Stage::kWrite));
}

TEST(TraceSamplerTest, RateZeroDisables) {
  TraceSampler sampler;
  sampler.set_rate(0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(sampler.Sample());
}

TEST(TraceSamplerTest, RateOneSamplesEverything) {
  TraceSampler sampler;
  sampler.set_rate(1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(sampler.Sample());
}

TEST(TraceSamplerTest, RateNSamplesOneInN) {
  TraceSampler sampler;
  sampler.set_rate(8);
  int sampled = 0;
  for (int i = 0; i < 800; ++i) {
    if (sampler.Sample()) ++sampled;
  }
  EXPECT_EQ(100, sampled);
}

TEST(TraceSamplerTest, DefaultRateIs256) {
  TraceSampler sampler;
  EXPECT_EQ(256u, sampler.rate());
}

TEST(TraceSamplerTest, ConcurrentSamplingKeepsTheRatio) {
  TraceSampler sampler;
  sampler.set_rate(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<int> counts(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (sampler.Sample()) ++counts[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  int total = 0;
  for (int c : counts) total += c;
  // The counter is shared and strictly round-robin, so the global ratio
  // is exact regardless of interleaving.
  EXPECT_EQ(kThreads * kPerThread / 4, total);
}

}  // namespace
}  // namespace useful::obs
