#include "obs/slowlog.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace useful::obs {
namespace {

Trace MakeTrace(const std::string& query, std::uint64_t service_micros,
                std::uint64_t write_micros = 0) {
  Trace trace(true);
  trace.SetQuery(query);
  trace.SetEstimator("subrange");
  trace.SetThreshold(0.5);
  trace.SetTotalMicros(service_micros);
  if (write_micros > 0) trace.AddStageMicros(Stage::kWrite, write_micros);
  return trace;
}

TEST(SlowQueryLogTest, InsertAndSnapshot) {
  SlowQueryLog log(4);
  EXPECT_TRUE(log.Insert(MakeTrace("slow", 500)));
  EXPECT_TRUE(log.Insert(MakeTrace("fast", 10)));
  EXPECT_TRUE(log.Insert(MakeTrace("medium", 100)));

  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(3u, records.size());
  EXPECT_EQ("slow", records[0].query);
  EXPECT_EQ("medium", records[1].query);
  EXPECT_EQ("fast", records[2].query);
  EXPECT_EQ(3u, log.inserted());
  EXPECT_EQ(0u, log.dropped());
}

TEST(SlowQueryLogTest, TotalIncludesWriteStage) {
  SlowQueryLog log(2);
  log.Insert(MakeTrace("q", 100, 40));
  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(1u, records.size());
  EXPECT_EQ(140u, records[0].total_micros);
  EXPECT_EQ(40u, records[0].stage_micros[static_cast<std::size_t>(
                     Stage::kWrite)]);
}

TEST(SlowQueryLogTest, RingOverwritesOldest) {
  SlowQueryLog log(2);
  log.Insert(MakeTrace("a", 1));
  log.Insert(MakeTrace("b", 2));
  log.Insert(MakeTrace("c", 3));  // laps slot 0
  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ("c", records[0].query);
  EXPECT_EQ("b", records[1].query);
}

TEST(SlowQueryLogTest, SequenceIsMonotone) {
  SlowQueryLog log(8);
  for (int i = 0; i < 5; ++i) log.Insert(MakeTrace("q", 10));
  std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(5u, records.size());
  // Same total: ties break newest-first.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i - 1].sequence, records[i].sequence);
  }
  EXPECT_EQ(5u, records[0].sequence);
}

TEST(SlowQueryLogTest, MaxEntriesCapsSnapshot) {
  SlowQueryLog log(8);
  for (int i = 0; i < 6; ++i) log.Insert(MakeTrace("q", 10 * (i + 1)));
  std::vector<SlowQueryRecord> records = log.Snapshot(2);
  ASSERT_EQ(2u, records.size());
  EXPECT_EQ(60u, records[0].total_micros);
  EXPECT_EQ(50u, records[1].total_micros);
}

TEST(SlowQueryLogTest, UnsampledAndQuerylessTracesIgnored) {
  SlowQueryLog log(4);
  EXPECT_FALSE(log.Insert(Trace(false)));
  Trace no_query(true);  // sampled STATS/RELOAD-style trace
  no_query.SetTotalMicros(99);
  EXPECT_FALSE(log.Insert(no_query));
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(0u, log.inserted());
}

TEST(SlowQueryLogTest, ResetReplacesCapacity) {
  SlowQueryLog log(2);
  log.Insert(MakeTrace("a", 1));
  log.Reset(5);
  EXPECT_EQ(5u, log.capacity());
  EXPECT_TRUE(log.Snapshot().empty());
  log.Reset(0);  // clamps to one slot
  EXPECT_EQ(1u, log.capacity());
}

TEST(SlowQueryLogTest, ConcurrentInsertsNeverBlockOrTear) {
  SlowQueryLog log(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Insert(MakeTrace("thread" + std::to_string(t), 10 + i));
        if (i % 256 == 0) log.Snapshot();  // concurrent readers
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every attempt either landed or was counted as dropped.
  EXPECT_EQ(static_cast<std::uint64_t>(kThreads) * kPerThread,
            log.inserted() + log.dropped());
  std::vector<SlowQueryRecord> records = log.Snapshot();
  EXPECT_LE(records.size(), 8u);
  for (const SlowQueryRecord& r : records) {
    EXPECT_EQ(0u, r.query.rfind("thread", 0));
    EXPECT_EQ("subrange", r.estimator);
  }
}

}  // namespace
}  // namespace useful::obs
