#include "obs/prometheus.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace useful::obs {
namespace {

TEST(EscapeLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ("plain", EscapeLabelValue("plain"));
  EXPECT_EQ("a\\\\b", EscapeLabelValue("a\\b"));
  EXPECT_EQ("a\\\"b", EscapeLabelValue("a\"b"));
  EXPECT_EQ("a\\nb", EscapeLabelValue("a\nb"));
}

TEST(MetricsBuilderTest, CounterEmitsHelpTypeAndSample) {
  MetricsBuilder b;
  b.Counter("requests_total", "Total requests.", 42);
  ASSERT_EQ(3u, b.lines().size());
  EXPECT_EQ("# HELP requests_total Total requests.", b.lines()[0]);
  EXPECT_EQ("# TYPE requests_total counter", b.lines()[1]);
  EXPECT_EQ("requests_total 42", b.lines()[2]);
}

TEST(MetricsBuilderTest, GaugeRendersIntegralValuesWithoutExponent) {
  MetricsBuilder b;
  b.Gauge("engines", "Engines.", 7.0);
  b.Gauge("load", "Load.", 0.25);
  EXPECT_EQ("engines 7", b.lines()[2]);
  EXPECT_EQ("load 0.25", b.lines()[5]);
}

TEST(MetricsBuilderTest, LabeledSample) {
  MetricsBuilder b;
  b.Sample("cmds_total", "command=\"route\"", std::uint64_t{9});
  EXPECT_EQ("cmds_total{command=\"route\"} 9", b.lines()[0]);
}

TEST(MetricsBuilderTest, HistogramSeriesIsCumulativeAndConsistent) {
  util::LatencyHistogram h;
  h.Record(30);      // <= 50us bound
  h.Record(70);      // <= 100us bound
  h.Record(9'000);   // <= 10ms bound
  h.Record(400'000); // <= 500ms bound

  MetricsBuilder b;
  b.Family("lat_seconds", "Latency.", "histogram");
  const std::vector<std::uint64_t>& bounds = DefaultLatencyBoundsMicros();
  b.HistogramSeries("lat_seconds", "stage=\"parse\"", h, bounds);

  const std::vector<std::string>& lines = b.lines();
  // 2 headers + one bucket per bound + +Inf + _sum + _count.
  ASSERT_EQ(2 + bounds.size() + 3, lines.size());

  // Buckets must be cumulative-monotone and end at the total count.
  std::uint64_t prev = 0;
  std::size_t bucket_lines = 0;
  for (const std::string& line : lines) {
    if (line.rfind("lat_seconds_bucket", 0) != 0) continue;
    ++bucket_lines;
    std::size_t sp = line.rfind(' ');
    std::uint64_t count = std::strtoull(line.c_str() + sp + 1, nullptr, 10);
    EXPECT_GE(count, prev) << line;
    prev = count;
    EXPECT_NE(std::string::npos, line.find("stage=\"parse\"")) << line;
    EXPECT_NE(std::string::npos, line.find("le=\"")) << line;
  }
  EXPECT_EQ(bounds.size() + 1, bucket_lines);
  EXPECT_EQ(4u, prev);  // the +Inf bucket holds every sample

  const std::string& count_line = lines.back();
  EXPECT_EQ("lat_seconds_count{stage=\"parse\"} 4", count_line);
  const std::string& sum_line = lines[lines.size() - 2];
  EXPECT_EQ(0u, sum_line.rfind("lat_seconds_sum{stage=\"parse\"} ", 0));
  double sum = std::strtod(
      sum_line.c_str() + std::string("lat_seconds_sum{stage=\"parse\"} ")
                             .size(),
      nullptr);
  EXPECT_DOUBLE_EQ((30 + 70 + 9'000 + 400'000) / 1e6, sum);
}

TEST(MetricsBuilderTest, EmptyHistogramStillEmitsAllSeries) {
  util::LatencyHistogram h;
  MetricsBuilder b;
  b.Family("lat_seconds", "Latency.", "histogram");
  b.HistogramSeries("lat_seconds", "", h, DefaultLatencyBoundsMicros());
  for (const std::string& line : b.lines()) {
    if (line.rfind("# ", 0) == 0) continue;
    EXPECT_EQ(' ', line[line.rfind(' ')]);
    EXPECT_EQ("0", line.substr(line.rfind(' ') + 1)) << line;
  }
  // Unlabeled series carry only the le label on buckets.
  EXPECT_EQ("lat_seconds_count 0", b.lines().back());
}

TEST(MetricsBuilderTest, BucketCountsRespectLeSemantics) {
  // A sample of 60us lands in a log-linear bucket spanning [56, 63]; it
  // must count toward the 100us bound but never toward the 50us bound.
  util::LatencyHistogram h;
  h.Record(60);
  util::LatencyHistogram::Cumulative c =
      h.CumulativeCounts(DefaultLatencyBoundsMicros());
  EXPECT_EQ(0u, c.le_counts[0]);  // le=50us
  EXPECT_EQ(1u, c.le_counts[1]);  // le=100us
  EXPECT_EQ(1u, c.total);
}

TEST(DefaultLatencyBoundsTest, SortedAscending) {
  const std::vector<std::uint64_t>& bounds = DefaultLatencyBoundsMicros();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

}  // namespace
}  // namespace useful::obs
