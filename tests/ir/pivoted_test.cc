// Pivoted document-length normalization (paper reference [16]) and its
// interaction with the usefulness machinery, including the single-term
// selection guarantee the paper says carries over to this similarity.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "estimate/subrange_estimator.h"
#include "ir/search_engine.h"
#include "represent/builder.h"

namespace useful::ir {
namespace {

corpus::Collection LengthSkewedCollection() {
  corpus::Collection c("skewed");
  // A short and a long document both about "zorp".
  c.Add({"short", "zorp blat"});
  c.Add({"long",
         "zorp zorp blat quix mumble fribble wozzle dap nerg lome "
         "brap tosk vilm krop zuft"});
  c.Add({"other", "unrelated words entirely"});
  return c;
}

std::unique_ptr<SearchEngine> MakeEngine(Normalization norm,
                                         const text::Analyzer* analyzer,
                                         double slope = 0.75) {
  SearchEngineOptions opts;
  opts.normalization = norm;
  opts.pivot_slope = slope;
  auto engine = std::make_unique<SearchEngine>("skewed", analyzer, opts);
  EXPECT_TRUE(engine->AddCollection(LengthSkewedCollection()).ok());
  EXPECT_TRUE(engine->Finalize().ok());
  return engine;
}

TEST(PivotedTest, SlopeZeroIsUniformScaling) {
  // slope = 0: every document is divided by the same pivot, so rankings
  // match the unnormalized engine exactly.
  text::Analyzer analyzer;
  auto pivoted = MakeEngine(Normalization::kPivoted, &analyzer, 0.0);
  auto raw = MakeEngine(Normalization::kNone, &analyzer);
  Query q = ParseQuery(analyzer, "zorp");
  auto rp = pivoted->SearchAboveThreshold(q, 0.0);
  auto rr = raw->SearchAboveThreshold(q, 0.0);
  ASSERT_EQ(rp.size(), rr.size());
  for (std::size_t i = 0; i < rp.size(); ++i) {
    EXPECT_EQ(rp[i].doc, rr[i].doc);
  }
  // And the scale factor is the shared pivot.
  ASSERT_GE(rp.size(), 2u);
  EXPECT_NEAR(rp[0].score / rp[1].score, rr[0].score / rr[1].score, 1e-9);
}

TEST(PivotedTest, SlopeOneIsPureLengthNormalization) {
  // slope = 1: denominator is exactly |d| — identical to cosine.
  text::Analyzer analyzer;
  auto pivoted = MakeEngine(Normalization::kPivoted, &analyzer, 1.0);
  auto cosine = MakeEngine(Normalization::kCosine, &analyzer);
  Query q = ParseQuery(analyzer, "zorp blat");
  auto rp = pivoted->SearchAboveThreshold(q, 0.0);
  auto rc = cosine->SearchAboveThreshold(q, 0.0);
  ASSERT_EQ(rp.size(), rc.size());
  for (std::size_t i = 0; i < rp.size(); ++i) {
    EXPECT_EQ(rp[i].doc, rc[i].doc);
    EXPECT_NEAR(rp[i].score, rc[i].score, 1e-9);
  }
}

TEST(PivotedTest, InterpolatesBetweenExtremes) {
  // Cosine over-penalizes long documents (Singhal et al.'s observation);
  // pivoted normalization with slope < 1 scores the long document closer
  // to the short one than cosine does.
  text::Analyzer analyzer;
  auto pivoted = MakeEngine(Normalization::kPivoted, &analyzer, 0.5);
  auto cosine = MakeEngine(Normalization::kCosine, &analyzer);
  Query q = ParseQuery(analyzer, "zorp");

  auto score_of = [&](const SearchEngine& e, DocId d) {
    for (const ScoredDoc& sd : e.SearchAboveThreshold(q, 0.0)) {
      if (sd.doc == d) return sd.score;
    }
    return 0.0;
  };
  // Doc 0 = short, doc 1 = long in both engines.
  double cos_ratio = score_of(*cosine, 1) / score_of(*cosine, 0);
  double piv_ratio = score_of(*pivoted, 1) / score_of(*pivoted, 0);
  EXPECT_GT(piv_ratio, cos_ratio);
}

TEST(PivotedTest, SingleTermGuaranteeHoldsUnderPivoted) {
  // The paper (§3.1): "The same argument applies to other similarity
  // functions such as [16]" — the representative built over pivoted
  // weights preserves exact single-term selection.
  text::Analyzer analyzer;
  auto engine = MakeEngine(Normalization::kPivoted, &analyzer, 0.75);
  auto rep = represent::BuildRepresentative(*engine);
  ASSERT_TRUE(rep.ok());
  estimate::SubrangeEstimator subrange;
  for (const char* word : {"zorp", "blat", "quix", "unrelated", "ghost"}) {
    Query q = ParseQuery(analyzer, word);
    // Pivoted similarities are not bounded by 1; probe thresholds across
    // the observed score range.
    auto scored = engine->SearchAboveThreshold(q, 0.0);
    double top = scored.empty() ? 0.5 : scored[0].score;
    for (double t : {top * 0.5, top * 0.9, top * 1.1}) {
      bool truly_useful = engine->TrueUsefulness(q, t).no_doc >= 1;
      bool flagged = estimate::RoundNoDoc(
                         subrange.Estimate(rep.value(), q, t).no_doc) >= 1;
      EXPECT_EQ(flagged, truly_useful) << word << " T=" << t;
    }
  }
}

TEST(PivotedTest, EmptyDocumentsSurvivePivoting) {
  text::Analyzer analyzer;
  SearchEngineOptions opts;
  opts.normalization = Normalization::kPivoted;
  SearchEngine engine("e", &analyzer, opts);
  corpus::Collection c("c");
  c.Add({"d0", ""});
  c.Add({"d1", "zorp"});
  ASSERT_TRUE(engine.AddCollection(c).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  Query q = ParseQuery(analyzer, "zorp");
  EXPECT_EQ(engine.SearchAboveThreshold(q, 0.0).size(), 1u);
}

}  // namespace
}  // namespace useful::ir
