// Parameterized sweep: engine invariants must hold for every combination
// of weighting scheme and normalization, and the subrange estimator's
// single-term guarantee must hold for every normalization that stores
// true maximum weights.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "estimate/subrange_estimator.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "util/random.h"

namespace useful::ir {
namespace {

corpus::Collection RandomCollection(std::uint64_t seed) {
  Pcg32 rng(seed);
  corpus::Collection c("sweep");
  const char* vocab[] = {"zorpa", "blatu", "quixo", "mumba", "wozzle",
                         "dapli", "nergo", "fribb", "toska", "vilmo"};
  for (int d = 0; d < 40; ++d) {
    std::string text;
    std::size_t len = 2 + rng.NextBounded(25);
    for (std::size_t k = 0; k < len; ++k) {
      if (!text.empty()) text += ' ';
      text += vocab[rng.NextZipf(10, 0.9)];
    }
    c.Add({"d" + std::to_string(d), text});
  }
  return c;
}

using SweepParam = std::tuple<WeightingScheme, Normalization>;

class EngineSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    SearchEngineOptions opts;
    opts.weighting = std::get<0>(GetParam());
    opts.normalization = std::get<1>(GetParam());
    engine_ = std::make_unique<SearchEngine>("sweep", &analyzer_, opts);
    ASSERT_TRUE(engine_->AddCollection(RandomCollection(99)).ok());
    ASSERT_TRUE(engine_->Finalize().ok());
  }

  text::Analyzer analyzer_;
  std::unique_ptr<SearchEngine> engine_;
};

TEST_P(EngineSweep, ScoresAreFiniteNonNegativeAndSorted) {
  Query q = ParseQuery(analyzer_, "zorpa blatu quixo");
  auto results = engine_->SearchAboveThreshold(q, 0.0);
  ASSERT_FALSE(results.empty());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(std::isfinite(results[i].score));
    EXPECT_GT(results[i].score, 0.0);
    if (i > 0) {
      EXPECT_LE(results[i].score, results[i - 1].score);
    }
  }
}

TEST_P(EngineSweep, CosineScoresBoundedByOne) {
  if (std::get<1>(GetParam()) != Normalization::kCosine) GTEST_SKIP();
  Query q = ParseQuery(analyzer_, "zorpa blatu quixo mumba");
  for (const ScoredDoc& sd : engine_->SearchAboveThreshold(q, 0.0)) {
    EXPECT_LE(sd.score, 1.0 + 1e-9);
  }
}

TEST_P(EngineSweep, TrueUsefulnessConsistentWithSearch) {
  Query q = ParseQuery(analyzer_, "zorpa wozzle");
  for (double frac : {0.2, 0.5, 0.9}) {
    auto all = engine_->SearchAboveThreshold(q, 0.0);
    if (all.empty()) continue;
    double t = all[0].score * frac;
    Usefulness u = engine_->TrueUsefulness(q, t);
    auto above = engine_->SearchAboveThreshold(q, t);
    EXPECT_EQ(u.no_doc, above.size());
    if (!above.empty()) {
      double sum = 0.0;
      for (const ScoredDoc& sd : above) sum += sd.score;
      EXPECT_NEAR(u.avg_sim, sum / static_cast<double>(above.size()), 1e-12);
    }
  }
}

TEST_P(EngineSweep, RepresentativeMaxMatchesBestSingleTermScore) {
  // The stored max weight must equal the best exact score of the
  // corresponding single-term query — the bridge the §3.1 guarantee
  // stands on, for every weighting/normalization combination.
  auto rep = represent::BuildRepresentative(*engine_);
  ASSERT_TRUE(rep.ok());
  for (const char* word : {"zorpa", "blatu", "vilmo"}) {
    Query q = ParseQuery(analyzer_, word);
    auto top = engine_->SearchTopK(q, 1);
    auto ts = rep.value().Find(word);
    if (top.empty()) {
      EXPECT_FALSE(ts.has_value());
      continue;
    }
    ASSERT_TRUE(ts.has_value()) << word;
    EXPECT_NEAR(ts->max_weight, top[0].score, 1e-12) << word;
  }
}

TEST_P(EngineSweep, SingleTermSelectionExactUnderAllConfigs) {
  auto rep = represent::BuildRepresentative(*engine_);
  ASSERT_TRUE(rep.ok());
  estimate::SubrangeEstimator subrange;
  for (const char* word : {"zorpa", "quixo", "toska"}) {
    Query q = ParseQuery(analyzer_, word);
    auto top = engine_->SearchTopK(q, 1);
    if (top.empty()) continue;
    for (double frac : {0.5, 0.99, 1.01}) {
      double t = top[0].score * frac;
      bool truly = engine_->TrueUsefulness(q, t).no_doc >= 1;
      bool flagged = estimate::RoundNoDoc(
                         subrange.Estimate(rep.value(), q, t).no_doc) >= 1;
      EXPECT_EQ(flagged, truly) << word << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EngineSweep,
    ::testing::Combine(
        ::testing::Values(WeightingScheme::kTf, WeightingScheme::kLogTf,
                          WeightingScheme::kTfIdf,
                          WeightingScheme::kLogTfIdf),
        ::testing::Values(Normalization::kNone, Normalization::kCosine,
                          Normalization::kPivoted)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = WeightingSchemeName(std::get<0>(info.param));
      switch (std::get<1>(info.param)) {
        case Normalization::kNone:
          name += "_raw";
          break;
        case Normalization::kCosine:
          name += "_cosine";
          break;
        case Normalization::kPivoted:
          name += "_pivoted";
          break;
      }
      return name;
    });

}  // namespace
}  // namespace useful::ir
