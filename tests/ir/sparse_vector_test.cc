#include "ir/sparse_vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace useful::ir {
namespace {

TEST(SparseVectorTest, FromEntriesSortsByTerm) {
  auto v = SparseVector::FromEntries({{5, 1.0}, {2, 2.0}, {9, 3.0}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.entries()[0].first, 2u);
  EXPECT_EQ(v.entries()[1].first, 5u);
  EXPECT_EQ(v.entries()[2].first, 9u);
}

TEST(SparseVectorTest, FromEntriesMergesDuplicates) {
  auto v = SparseVector::FromEntries({{3, 1.0}, {3, 2.5}, {3, 0.5}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.entries()[0].second, 4.0);
}

TEST(SparseVectorTest, FromEntriesDropsZeros) {
  auto v = SparseVector::FromEntries({{1, 0.0}, {2, 1.0}, {3, -1.0}, {3, 1.0}});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.entries()[0].first, 2u);
}

TEST(SparseVectorTest, EmptyVector) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.Norm(), 0.0);
  EXPECT_FALSE(v.Normalize());
  EXPECT_EQ(v.Dot(v), 0.0);
}

TEST(SparseVectorTest, NormIsEuclidean) {
  auto v = SparseVector::FromEntries({{0, 3.0}, {1, 4.0}});
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
}

TEST(SparseVectorTest, NormalizeToUnit) {
  auto v = SparseVector::FromEntries({{0, 3.0}, {1, 4.0}});
  ASSERT_TRUE(v.Normalize());
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(v.entries()[0].second, 0.6);
  EXPECT_DOUBLE_EQ(v.entries()[1].second, 0.8);
}

TEST(SparseVectorTest, ScaleMultipliesWeights) {
  auto v = SparseVector::FromEntries({{0, 1.0}, {1, 2.0}});
  v.Scale(3.0);
  EXPECT_DOUBLE_EQ(v.entries()[0].second, 3.0);
  EXPECT_DOUBLE_EQ(v.entries()[1].second, 6.0);
}

TEST(SparseVectorTest, DotDisjointIsZero) {
  auto a = SparseVector::FromEntries({{0, 1.0}, {2, 1.0}});
  auto b = SparseVector::FromEntries({{1, 1.0}, {3, 1.0}});
  EXPECT_EQ(a.Dot(b), 0.0);
}

TEST(SparseVectorTest, DotOverlapping) {
  auto a = SparseVector::FromEntries({{0, 2.0}, {1, 3.0}, {5, 1.0}});
  auto b = SparseVector::FromEntries({{1, 4.0}, {5, 2.0}, {9, 7.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 3.0 * 4.0 + 1.0 * 2.0);
}

TEST(SparseVectorTest, DotIsSymmetric) {
  Pcg32 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SparseVector::Entry> ea, eb;
    for (int i = 0; i < 20; ++i) {
      ea.emplace_back(rng.NextBounded(30), rng.NextDouble());
      eb.emplace_back(rng.NextBounded(30), rng.NextDouble());
    }
    auto a = SparseVector::FromEntries(ea);
    auto b = SparseVector::FromEntries(eb);
    EXPECT_NEAR(a.Dot(b), b.Dot(a), 1e-12);
  }
}

TEST(SparseVectorTest, CauchySchwarzOnUnitVectors) {
  Pcg32 rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SparseVector::Entry> ea, eb;
    for (int i = 0; i < 15; ++i) {
      ea.emplace_back(rng.NextBounded(25), rng.NextDouble() + 0.01);
      eb.emplace_back(rng.NextBounded(25), rng.NextDouble() + 0.01);
    }
    auto a = SparseVector::FromEntries(ea);
    auto b = SparseVector::FromEntries(eb);
    ASSERT_TRUE(a.Normalize());
    ASSERT_TRUE(b.Normalize());
    double dot = a.Dot(b);
    EXPECT_GE(dot, 0.0);
    EXPECT_LE(dot, 1.0 + 1e-12);
  }
}

TEST(SparseVectorTest, WeightOfPresent) {
  auto v = SparseVector::FromEntries({{2, 1.5}, {7, 2.5}});
  EXPECT_DOUBLE_EQ(v.WeightOf(2), 1.5);
  EXPECT_DOUBLE_EQ(v.WeightOf(7), 2.5);
}

TEST(SparseVectorTest, WeightOfAbsentIsZero) {
  auto v = SparseVector::FromEntries({{2, 1.5}, {7, 2.5}});
  EXPECT_EQ(v.WeightOf(0), 0.0);
  EXPECT_EQ(v.WeightOf(5), 0.0);
  EXPECT_EQ(v.WeightOf(100), 0.0);
}

}  // namespace
}  // namespace useful::ir
