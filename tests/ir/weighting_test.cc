#include "ir/weighting.h"

#include <gtest/gtest.h>

#include <cmath>

namespace useful::ir {
namespace {

TEST(WeightingTest, TfIsIdentity) {
  EXPECT_DOUBLE_EQ(ComputeWeight(WeightingScheme::kTf, 3.0, 10, 5), 3.0);
  EXPECT_DOUBLE_EQ(ComputeWeight(WeightingScheme::kTf, 1.0, 10, 5), 1.0);
}

TEST(WeightingTest, ZeroTfIsZeroForAllSchemes) {
  for (auto scheme :
       {WeightingScheme::kTf, WeightingScheme::kLogTf, WeightingScheme::kTfIdf,
        WeightingScheme::kLogTfIdf}) {
    EXPECT_EQ(ComputeWeight(scheme, 0.0, 10, 5), 0.0);
  }
}

TEST(WeightingTest, LogTf) {
  EXPECT_DOUBLE_EQ(ComputeWeight(WeightingScheme::kLogTf, 1.0, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(ComputeWeight(WeightingScheme::kLogTf, std::exp(1.0), 10, 5),
                   2.0);
}

TEST(WeightingTest, TfIdfGrowsWithRarity) {
  double common = ComputeWeight(WeightingScheme::kTfIdf, 2.0, 1000, 900);
  double rare = ComputeWeight(WeightingScheme::kTfIdf, 2.0, 1000, 3);
  EXPECT_GT(rare, common);
}

TEST(WeightingTest, TfIdfFormula) {
  double w = ComputeWeight(WeightingScheme::kTfIdf, 2.0, 100, 25);
  EXPECT_DOUBLE_EQ(w, 2.0 * std::log(1.0 + 100.0 / 25.0));
}

TEST(WeightingTest, LogTfIdfFormula) {
  double w = ComputeWeight(WeightingScheme::kLogTfIdf, std::exp(2.0), 100, 50);
  EXPECT_NEAR(w, 3.0 * std::log(3.0), 1e-12);
}

TEST(WeightingTest, NamesRoundTrip) {
  for (auto scheme :
       {WeightingScheme::kTf, WeightingScheme::kLogTf, WeightingScheme::kTfIdf,
        WeightingScheme::kLogTfIdf}) {
    auto parsed = ParseWeightingScheme(WeightingSchemeName(scheme));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), scheme);
  }
}

TEST(WeightingTest, ParseRejectsUnknown) {
  auto r = ParseWeightingScheme("bm25");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

}  // namespace
}  // namespace useful::ir
