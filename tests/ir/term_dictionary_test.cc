#include "ir/term_dictionary.h"

#include <gtest/gtest.h>

namespace useful::ir {
namespace {

TEST(TermDictionaryTest, AssignsSequentialIds) {
  TermDictionary d;
  EXPECT_EQ(d.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(d.GetOrAdd("beta"), 1u);
  EXPECT_EQ(d.GetOrAdd("gamma"), 2u);
  EXPECT_EQ(d.size(), 3u);
}

TEST(TermDictionaryTest, GetOrAddIsIdempotent) {
  TermDictionary d;
  TermId a = d.GetOrAdd("alpha");
  EXPECT_EQ(d.GetOrAdd("alpha"), a);
  EXPECT_EQ(d.size(), 1u);
}

TEST(TermDictionaryTest, LookupFindsExisting) {
  TermDictionary d;
  d.GetOrAdd("alpha");
  d.GetOrAdd("beta");
  EXPECT_EQ(d.Lookup("beta"), 1u);
}

TEST(TermDictionaryTest, LookupMissingReturnsInvalid) {
  TermDictionary d;
  d.GetOrAdd("alpha");
  EXPECT_EQ(d.Lookup("missing"), kInvalidTerm);
  EXPECT_EQ(d.Lookup(""), kInvalidTerm);
}

TEST(TermDictionaryTest, TermRoundTrip) {
  TermDictionary d;
  for (const char* w : {"one", "two", "three"}) d.GetOrAdd(w);
  for (TermId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(d.Lookup(d.term(id)), id);
  }
}

TEST(TermDictionaryTest, StableUnderRehash) {
  TermDictionary d;
  std::vector<std::string> words;
  for (int i = 0; i < 10000; ++i) {
    std::string w = "w";
    w += std::to_string(i);
    words.push_back(std::move(w));
  }
  for (const auto& w : words) d.GetOrAdd(w);
  // Pointers into terms_ keys must have stayed valid through growth.
  for (std::size_t i = 0; i < words.size(); i += 997) {
    EXPECT_EQ(d.Lookup(words[i]), static_cast<TermId>(i));
    EXPECT_EQ(d.term(static_cast<TermId>(i)), words[i]);
  }
}

}  // namespace
}  // namespace useful::ir
