#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "ir/search_engine.h"
#include "represent/builder.h"

namespace useful::ir {
namespace {

corpus::Collection ToyCollection() {
  corpus::Collection c("toy");
  c.Add({"d0", "zorp zorp zorp"});
  c.Add({"d1", "zorp quix"});
  c.Add({"d2", "blat blat"});
  c.Add({"d3", "zorp zorp blat blat"});
  c.Add({"d4", "mumble"});
  return c;
}

class EngineSerializeTest : public ::testing::Test {
 protected:
  SearchEngine MakeEngine(SearchEngineOptions opts = {}) {
    SearchEngine engine("toy", &analyzer_, opts);
    EXPECT_TRUE(engine.AddCollection(ToyCollection()).ok());
    EXPECT_TRUE(engine.Finalize().ok());
    return engine;
  }
  text::Analyzer analyzer_;
};

TEST_F(EngineSerializeTest, RoundTripPreservesSearchBehaviour) {
  SearchEngine orig = MakeEngine();
  std::stringstream ss;
  ASSERT_TRUE(orig.Save(ss).ok());
  auto loaded = SearchEngine::Load(ss, &analyzer_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().name(), "toy");
  EXPECT_EQ(loaded.value().num_docs(), orig.num_docs());
  EXPECT_EQ(loaded.value().num_terms(), orig.num_terms());
  EXPECT_TRUE(loaded.value().finalized());

  for (const char* text : {"zorp", "blat quix", "zorp blat mumble"}) {
    Query q = ParseQuery(analyzer_, text);
    auto a = orig.SearchAboveThreshold(q, 0.0);
    auto b = loaded.value().SearchAboveThreshold(q, 0.0);
    ASSERT_EQ(a.size(), b.size()) << text;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(orig.doc_external_id(a[i].doc),
                loaded.value().doc_external_id(b[i].doc));
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

TEST_F(EngineSerializeTest, RoundTripPreservesRepresentative) {
  SearchEngine orig = MakeEngine();
  std::stringstream ss;
  ASSERT_TRUE(orig.Save(ss).ok());
  auto loaded = SearchEngine::Load(ss, &analyzer_);
  ASSERT_TRUE(loaded.ok());
  auto rep_a = represent::BuildRepresentative(orig);
  auto rep_b = represent::BuildRepresentative(loaded.value());
  ASSERT_TRUE(rep_a.ok());
  ASSERT_TRUE(rep_b.ok());
  ASSERT_EQ(rep_a.value().num_terms(), rep_b.value().num_terms());
  for (const auto& [term, expected] : rep_a.value().stats()) {
    auto got = rep_b.value().Find(term);
    ASSERT_TRUE(got.has_value()) << term;
    EXPECT_DOUBLE_EQ(got->avg_weight, expected.avg_weight);
    EXPECT_DOUBLE_EQ(got->max_weight, expected.max_weight);
  }
}

TEST_F(EngineSerializeTest, OptionsRoundTrip) {
  SearchEngineOptions opts;
  opts.weighting = WeightingScheme::kLogTfIdf;
  opts.normalization = Normalization::kPivoted;
  opts.pivot_slope = 0.42;
  SearchEngine orig = MakeEngine(opts);
  std::stringstream ss;
  ASSERT_TRUE(orig.Save(ss).ok());
  auto loaded = SearchEngine::Load(ss, &analyzer_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().options().weighting, WeightingScheme::kLogTfIdf);
  EXPECT_EQ(loaded.value().options().normalization, Normalization::kPivoted);
  EXPECT_DOUBLE_EQ(loaded.value().options().pivot_slope, 0.42);
}

TEST_F(EngineSerializeTest, SaveRequiresFinalized) {
  SearchEngine engine("raw", &analyzer_);
  ASSERT_TRUE(engine.Add({"d", "word"}).ok());
  std::stringstream ss;
  EXPECT_EQ(engine.Save(ss).code(), Status::Code::kFailedPrecondition);
}

TEST_F(EngineSerializeTest, LoadedEngineRejectsFurtherAdds) {
  SearchEngine orig = MakeEngine();
  std::stringstream ss;
  ASSERT_TRUE(orig.Save(ss).ok());
  auto loaded = SearchEngine::Load(ss, &analyzer_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().Add({"late", "text"}).ok());
}

TEST_F(EngineSerializeTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "JUNKDATA";
  auto r = SearchEngine::Load(ss, &analyzer_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST_F(EngineSerializeTest, RejectsNullAnalyzer) {
  std::stringstream ss;
  EXPECT_FALSE(SearchEngine::Load(ss, nullptr).ok());
}

TEST_F(EngineSerializeTest, RejectsTruncation) {
  SearchEngine orig = MakeEngine();
  std::stringstream ss;
  ASSERT_TRUE(orig.Save(ss).ok());
  std::string bytes = ss.str();
  for (std::size_t cut :
       {bytes.size() - 1, bytes.size() / 2, bytes.size() / 4, 5ul}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto r = SearchEngine::Load(truncated, &analyzer_);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST_F(EngineSerializeTest, FileRoundTrip) {
  auto path =
      std::filesystem::temp_directory_path() / "useful_engine_test.idx";
  SearchEngine orig = MakeEngine();
  ASSERT_TRUE(orig.SaveToFile(path.string()).ok());
  auto loaded = SearchEngine::LoadFromFile(path.string(), &analyzer_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_docs(), 5u);
  std::filesystem::remove(path);
}

TEST_F(EngineSerializeTest, LoadMissingFileFails) {
  auto r = SearchEngine::LoadFromFile("/no/such/file.idx", &analyzer_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

}  // namespace
}  // namespace useful::ir
