#include "ir/query.h"

#include <gtest/gtest.h>

#include <cmath>

namespace useful::ir {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  text::Analyzer analyzer_;
};

TEST_F(QueryTest, SingleTermHasWeightOne) {
  // Paper §3.1: "the query has a normalized weight of 1 for t".
  Query q = ParseQuery(analyzer_, "database");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.terms[0].term, "database");
  EXPECT_DOUBLE_EQ(q.terms[0].weight, 1.0);
}

TEST_F(QueryTest, DistinctTermsGetEqualNormalizedWeights) {
  Query q = ParseQuery(analyzer_, "database search engine");
  ASSERT_EQ(q.size(), 3u);
  for (const QueryTerm& t : q.terms) {
    EXPECT_NEAR(t.weight, 1.0 / std::sqrt(3.0), 1e-12);
  }
}

TEST_F(QueryTest, QueryVectorIsUnitNorm) {
  Query q = ParseQuery(analyzer_, "alpha beta beta gamma gamma gamma");
  double norm_sq = 0.0;
  for (const QueryTerm& t : q.terms) norm_sq += t.weight * t.weight;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST_F(QueryTest, RepeatedTermsMergeWithTfWeights) {
  Query q = ParseQuery(analyzer_, "data data mining");
  ASSERT_EQ(q.size(), 2u);
  // tf(data)=2, tf(mining)=1, norm = sqrt(5).
  double data_w = 0.0, mining_w = 0.0;
  for (const QueryTerm& t : q.terms) {
    if (t.term == "data") data_w = t.weight;
    if (t.term == "mining") mining_w = t.weight;
  }
  EXPECT_NEAR(data_w, 2.0 / std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(mining_w, 1.0 / std::sqrt(5.0), 1e-12);
}

TEST_F(QueryTest, StopwordsRemoved) {
  Query q = ParseQuery(analyzer_, "the search of engines");
  ASSERT_EQ(q.size(), 2u);
}

TEST_F(QueryTest, AllStopwordsGiveEmptyQuery) {
  Query q = ParseQuery(analyzer_, "the of and");
  EXPECT_TRUE(q.empty());
}

TEST_F(QueryTest, IdIsPreserved) {
  Query q = ParseQuery(analyzer_, "alpha", "q42");
  EXPECT_EQ(q.id, "q42");
}

TEST_F(QueryTest, TermOrderIsDeterministic) {
  Query a = ParseQuery(analyzer_, "zeta alpha mu");
  Query b = ParseQuery(analyzer_, "mu zeta alpha");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.terms[i].term, b.terms[i].term);
  }
}

}  // namespace
}  // namespace useful::ir
