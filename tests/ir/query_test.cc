#include "ir/query.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

namespace useful::ir {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  text::Analyzer analyzer_;
};

TEST_F(QueryTest, SingleTermHasWeightOne) {
  // Paper §3.1: "the query has a normalized weight of 1 for t".
  Query q = ParseQuery(analyzer_, "database");
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.terms[0].term, "database");
  EXPECT_DOUBLE_EQ(q.terms[0].weight, 1.0);
}

TEST_F(QueryTest, DistinctTermsGetEqualNormalizedWeights) {
  Query q = ParseQuery(analyzer_, "database search engine");
  ASSERT_EQ(q.size(), 3u);
  for (const QueryTerm& t : q.terms) {
    EXPECT_NEAR(t.weight, 1.0 / std::sqrt(3.0), 1e-12);
  }
}

TEST_F(QueryTest, QueryVectorIsUnitNorm) {
  Query q = ParseQuery(analyzer_, "alpha beta beta gamma gamma gamma");
  double norm_sq = 0.0;
  for (const QueryTerm& t : q.terms) norm_sq += t.weight * t.weight;
  EXPECT_NEAR(norm_sq, 1.0, 1e-12);
}

TEST_F(QueryTest, RepeatedTermsMergeWithTfWeights) {
  Query q = ParseQuery(analyzer_, "data data mining");
  ASSERT_EQ(q.size(), 2u);
  // tf(data)=2, tf(mining)=1, norm = sqrt(5).
  double data_w = 0.0, mining_w = 0.0;
  for (const QueryTerm& t : q.terms) {
    if (t.term == "data") data_w = t.weight;
    if (t.term == "mining") mining_w = t.weight;
  }
  EXPECT_NEAR(data_w, 2.0 / std::sqrt(5.0), 1e-12);
  EXPECT_NEAR(mining_w, 1.0 / std::sqrt(5.0), 1e-12);
}

TEST_F(QueryTest, StopwordsRemoved) {
  Query q = ParseQuery(analyzer_, "the search of engines");
  ASSERT_EQ(q.size(), 2u);
}

TEST_F(QueryTest, AllStopwordsGiveEmptyQuery) {
  Query q = ParseQuery(analyzer_, "the of and");
  EXPECT_TRUE(q.empty());
}

TEST_F(QueryTest, IdIsPreserved) {
  Query q = ParseQuery(analyzer_, "alpha", "q42");
  EXPECT_EQ(q.id, "q42");
}

TEST_F(QueryTest, TermOrderIsDeterministic) {
  Query a = ParseQuery(analyzer_, "zeta alpha mu");
  Query b = ParseQuery(analyzer_, "mu zeta alpha");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.terms[i].term, b.terms[i].term);
  }
}

// ---------------------------------------------------------------------------
// The annotated grammar: ["-"]<text>["^"<weight>], plus one "MSM <k>"
// pair anywhere in the query.

class AnnotatedQueryTest : public ::testing::Test {
 protected:
  Query MustParse(const std::string& text) {
    auto q = ParseAnnotatedQuery(analyzer_, text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
    return q.ok() ? std::move(q).value() : Query{};
  }

  std::string ParseError(const std::string& text) {
    auto q = ParseAnnotatedQuery(analyzer_, text);
    EXPECT_FALSE(q.ok()) << text;
    return q.ok() ? "" : q.status().ToString();
  }

  text::Analyzer analyzer_;
};

TEST_F(AnnotatedQueryTest, FlatTextParsesBitIdenticallyToParseQuery) {
  const char* texts[] = {"database", "database search engine",
                         "data data mining", "the search of engines",
                         "alpha beta beta gamma gamma gamma"};
  for (const char* text : texts) {
    Query flat = ParseQuery(analyzer_, text, "qid");
    Query annotated = MustParse(text);
    annotated.id = flat.id;
    ASSERT_EQ(annotated.size(), flat.size()) << text;
    for (std::size_t i = 0; i < flat.size(); ++i) {
      EXPECT_EQ(annotated.terms[i].term, flat.terms[i].term);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(annotated.terms[i].weight),
                std::bit_cast<std::uint64_t>(flat.terms[i].weight))
          << text << " term " << i;
      EXPECT_FALSE(annotated.terms[i].negated);
    }
    EXPECT_EQ(annotated.min_should_match, 0u);
  }
}

TEST_F(AnnotatedQueryTest, WeightScalesTfBeforeNormalization) {
  // f(data)=2.5, f(mining)=1, norm = sqrt(2.5^2 + 1).
  Query q = MustParse("data^2.5 mining");
  ASSERT_EQ(q.size(), 2u);
  const double norm = std::sqrt(2.5 * 2.5 + 1.0);
  for (const QueryTerm& t : q.terms) {
    if (t.term == "data") {
      EXPECT_NEAR(t.weight, 2.5 / norm, 1e-12);
      EXPECT_EQ(t.user_weight, 2.5);
    } else {
      EXPECT_NEAR(t.weight, 1.0 / norm, 1e-12);
    }
  }
}

TEST_F(AnnotatedQueryTest, RepeatedWeightedTermsAccumulate)  {
  // data^2 data -> f = 3; same as data^3 alone.
  Query twice = MustParse("data^2 data");
  Query once = MustParse("data^3");
  ASSERT_EQ(twice.size(), 1u);
  ASSERT_EQ(once.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(twice.terms[0].weight),
            std::bit_cast<std::uint64_t>(once.terms[0].weight));
}

TEST_F(AnnotatedQueryTest, NegationSetsFlagAndKeepsPositiveWeight) {
  Query q = MustParse("data -mining^2");
  const std::string negated_term = ParseQuery(analyzer_, "mining").terms[0].term;
  ASSERT_EQ(q.size(), 2u);
  for (const QueryTerm& t : q.terms) {
    EXPECT_GT(t.weight, 0.0);
    EXPECT_EQ(t.negated, t.term == negated_term);
  }
}

TEST_F(AnnotatedQueryTest, MsmParsesAnywhereOnce) {
  EXPECT_EQ(MustParse("data mining MSM 2").min_should_match, 2u);
  EXPECT_EQ(MustParse("MSM 1 data mining").min_should_match, 1u);
  EXPECT_EQ(MustParse("data MSM 0 mining").min_should_match, 0u);
  EXPECT_EQ(MustParse("data mining MSM 1024").min_should_match, 1024u);
}

TEST_F(AnnotatedQueryTest, RejectsMalformedAnnotations) {
  EXPECT_NE(ParseError("data -").find("dangling '-'"), std::string::npos);
  EXPECT_NE(ParseError("data^"), "");
  EXPECT_NE(ParseError("data^0"), "");
  EXPECT_NE(ParseError("data^-1"), "");
  EXPECT_NE(ParseError("data^nan"), "");
  EXPECT_NE(ParseError("data^1e309"), "");
  EXPECT_NE(ParseError("data^2x"), "");
  EXPECT_NE(ParseError("data MSM"), "");
  EXPECT_NE(ParseError("data MSM -1"), "");
  EXPECT_NE(ParseError("data MSM abc"), "");
  EXPECT_NE(ParseError("data MSM 2.0"), "");
  EXPECT_NE(ParseError("data MSM 1025"), "");
  EXPECT_NE(ParseError("data MSM 1 MSM 2"), "");
  // One analyzer term reached with both signs.
  EXPECT_NE(ParseError("data -data"), "");
}

TEST_F(AnnotatedQueryTest, FormatRoundTripsThroughParse) {
  const char* texts[] = {"data^2.5 -mining grid MSM 2", "-data", "data grid",
                         "data^0.125 grid^8"};
  for (const char* text : texts) {
    Query q = MustParse(text);
    std::string formatted = FormatAnnotatedQuery(q);
    Query reparsed = MustParse(formatted);
    ASSERT_EQ(reparsed.size(), q.size()) << formatted;
    for (std::size_t i = 0; i < q.size(); ++i) {
      EXPECT_EQ(reparsed.terms[i].term, q.terms[i].term);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(reparsed.terms[i].weight),
                std::bit_cast<std::uint64_t>(q.terms[i].weight))
          << formatted;
      EXPECT_EQ(reparsed.terms[i].negated, q.terms[i].negated);
    }
    EXPECT_EQ(reparsed.min_should_match, q.min_should_match);
  }
}

}  // namespace
}  // namespace useful::ir
