#include "ir/search_engine.h"

#include <gtest/gtest.h>

#include <cmath>

namespace useful::ir {
namespace {

corpus::Collection ToyCollection() {
  // Unique pseudo-words so the stop list cannot interfere. Documents mirror
  // the structure of the paper's Example 3.1 (terms: zorp, quix, blat).
  corpus::Collection c("toy");
  c.Add({"d0", "zorp zorp zorp"});
  c.Add({"d1", "zorp quix"});
  c.Add({"d2", "blat blat"});
  c.Add({"d3", "zorp zorp blat blat"});
  c.Add({"d4", "mumble"});
  return c;
}

class SearchEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<SearchEngine>("toy", &analyzer_, options_);
    ASSERT_TRUE(engine_->AddCollection(ToyCollection()).ok());
    ASSERT_TRUE(engine_->Finalize().ok());
  }

  text::Analyzer analyzer_;
  SearchEngineOptions options_;  // tf + cosine (paper setting)
  std::unique_ptr<SearchEngine> engine_;
};

TEST_F(SearchEngineTest, BasicCounts) {
  EXPECT_EQ(engine_->num_docs(), 5u);
  EXPECT_EQ(engine_->num_terms(), 4u);
  EXPECT_TRUE(engine_->finalized());
}

TEST_F(SearchEngineTest, AddAfterFinalizeFails) {
  Status s = engine_->Add({"late", "too late"});
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
}

TEST_F(SearchEngineTest, FinalizeIsIdempotent) {
  EXPECT_TRUE(engine_->Finalize().ok());
  EXPECT_EQ(engine_->num_docs(), 5u);
}

TEST_F(SearchEngineTest, DocVectorsAreUnitNorm) {
  for (DocId d = 0; d < engine_->num_docs(); ++d) {
    EXPECT_NEAR(engine_->doc_vector(d).Norm(), 1.0, 1e-12) << d;
  }
}

TEST_F(SearchEngineTest, SingleTermSimilarityIsNormalizedWeight) {
  // sim(q, d) for single-term q is the term's normalized weight in d.
  Query q = ParseQuery(analyzer_, "zorp");
  auto results = engine_->SearchAboveThreshold(q, 0.0);
  ASSERT_EQ(results.size(), 3u);
  // d0 is purely "zorp": normalized weight 1 -> top hit.
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-12);
  // d1: zorp weight 1 of norm sqrt(2).
  // d3: zorp weight 2 of norm sqrt(8) = 1/sqrt(2) as well; tie broken by id.
  EXPECT_NEAR(results[1].score, 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(results[2].score, 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_LT(results[1].doc, results[2].doc);
}

TEST_F(SearchEngineTest, MultiTermCosine) {
  Query q = ParseQuery(analyzer_, "zorp blat");
  // d3 = (2,0,2)/sqrt(8): sim = (2+2)/(sqrt(2)*sqrt(8)) = 1.
  auto results = engine_->SearchAboveThreshold(q, 0.0);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc, 3u);
  EXPECT_NEAR(results[0].score, 1.0, 1e-12);
}

TEST_F(SearchEngineTest, ThresholdIsStrict) {
  Query q = ParseQuery(analyzer_, "zorp");
  // d0 scores exactly 1.0; threshold 1.0 must exclude it (sim > T).
  auto results = engine_->SearchAboveThreshold(q, 1.0);
  EXPECT_TRUE(results.empty());
  results = engine_->SearchAboveThreshold(q, 0.999);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc, 0u);
}

TEST_F(SearchEngineTest, UnknownTermsScoreNothing) {
  Query q = ParseQuery(analyzer_, "nonexistent");
  EXPECT_TRUE(engine_->SearchAboveThreshold(q, 0.0).empty());
}

TEST_F(SearchEngineTest, MixedKnownUnknownTerms) {
  Query q = ParseQuery(analyzer_, "zorp nonexistent");
  auto results = engine_->SearchAboveThreshold(q, 0.0);
  EXPECT_EQ(results.size(), 3u);
  // Scores are scaled by the query weight 1/sqrt(2).
  EXPECT_NEAR(results[0].score, 1.0 / std::sqrt(2.0), 1e-12);
}

TEST_F(SearchEngineTest, SearchTopK) {
  Query q = ParseQuery(analyzer_, "zorp");
  auto top2 = engine_->SearchTopK(q, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].doc, 0u);
  auto top10 = engine_->SearchTopK(q, 10);
  EXPECT_EQ(top10.size(), 3u);  // only 3 docs have positive score
}

TEST_F(SearchEngineTest, TrueUsefulnessMatchesDefinition) {
  Query q = ParseQuery(analyzer_, "zorp");
  Usefulness u = engine_->TrueUsefulness(q, 0.8);
  EXPECT_EQ(u.no_doc, 1u);
  EXPECT_NEAR(u.avg_sim, 1.0, 1e-12);

  u = engine_->TrueUsefulness(q, 0.5);
  EXPECT_EQ(u.no_doc, 3u);
  EXPECT_NEAR(u.avg_sim, (1.0 + 2.0 / std::sqrt(2.0)) / 3.0, 1e-12);

  u = engine_->TrueUsefulness(q, 1.0);
  EXPECT_EQ(u.no_doc, 0u);
  EXPECT_EQ(u.avg_sim, 0.0);
}

TEST_F(SearchEngineTest, ExternalIdsPreserved) {
  EXPECT_EQ(engine_->doc_external_id(0), "d0");
  EXPECT_EQ(engine_->doc_external_id(4), "d4");
}

TEST(SearchEngineUnnormalizedTest, RawTfWeights) {
  text::Analyzer analyzer;
  SearchEngineOptions opts;
  opts.normalization = Normalization::kNone;
  SearchEngine engine("raw", &analyzer, opts);
  ASSERT_TRUE(engine.AddCollection(ToyCollection()).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  // Without normalization, d0's zorp weight is the raw tf 3.
  Query q = ParseQuery(analyzer, "zorp");
  auto results = engine.SearchAboveThreshold(q, 0.0);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NEAR(results[0].score, 3.0, 1e-12);
}

TEST(SearchEngineTfIdfTest, IdfDemotesCommonTerms) {
  text::Analyzer analyzer;
  SearchEngineOptions opts;
  opts.weighting = WeightingScheme::kTfIdf;
  opts.normalization = Normalization::kNone;
  SearchEngine engine("tfidf", &analyzer, opts);
  corpus::Collection c("c");
  c.Add({"d0", "common rare"});
  c.Add({"d1", "common"});
  c.Add({"d2", "common"});
  ASSERT_TRUE(engine.AddCollection(c).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  // In d0, tf is 1 for both terms, but "rare" has higher idf.
  TermId common = engine.dictionary().Lookup("common");
  TermId rare = engine.dictionary().Lookup("rare");
  ASSERT_NE(common, kInvalidTerm);
  ASSERT_NE(rare, kInvalidTerm);
  EXPECT_GT(engine.doc_vector(0).WeightOf(rare),
            engine.doc_vector(0).WeightOf(common));
}

TEST(SearchEngineEmptyDocTest, EmptyDocumentsAreAllowed) {
  text::Analyzer analyzer;
  SearchEngine engine("e", &analyzer);
  corpus::Collection c("c");
  c.Add({"d0", ""});
  c.Add({"d1", "word"});
  ASSERT_TRUE(engine.AddCollection(c).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  EXPECT_EQ(engine.num_docs(), 2u);
  Query q = ParseQuery(analyzer, "word");
  EXPECT_EQ(engine.SearchAboveThreshold(q, 0.0).size(), 1u);
}

}  // namespace
}  // namespace useful::ir
