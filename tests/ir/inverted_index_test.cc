#include "ir/inverted_index.h"

#include <gtest/gtest.h>

namespace useful::ir {
namespace {

std::vector<SparseVector> ToyVectors() {
  // Example 3.1 of the paper: five documents over three terms.
  return {
      SparseVector::FromEntries({{0, 3.0}}),
      SparseVector::FromEntries({{0, 1.0}, {1, 1.0}}),
      SparseVector::FromEntries({{2, 2.0}}),
      SparseVector::FromEntries({{0, 2.0}, {2, 2.0}}),
      SparseVector::FromEntries({}),
  };
}

TEST(InvertedIndexTest, DocFreqMatchesExample31) {
  InvertedIndex index;
  index.Build(ToyVectors(), 3);
  EXPECT_EQ(index.DocFreq(0), 3u);  // p1 = 0.6 over 5 docs
  EXPECT_EQ(index.DocFreq(1), 1u);  // p2 = 0.2
  EXPECT_EQ(index.DocFreq(2), 2u);  // p3 = 0.4
}

TEST(InvertedIndexTest, PostingsOrderedByDocId) {
  InvertedIndex index;
  index.Build(ToyVectors(), 3);
  const auto& p = index.postings(0);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].doc, 0u);
  EXPECT_EQ(p[1].doc, 1u);
  EXPECT_EQ(p[2].doc, 3u);
}

TEST(InvertedIndexTest, PostingWeightsPreserved) {
  InvertedIndex index;
  index.Build(ToyVectors(), 3);
  EXPECT_DOUBLE_EQ(index.postings(0)[0].weight, 3.0);
  EXPECT_DOUBLE_EQ(index.postings(0)[2].weight, 2.0);
  EXPECT_DOUBLE_EQ(index.postings(2)[0].weight, 2.0);
}

TEST(InvertedIndexTest, Counts) {
  InvertedIndex index;
  index.Build(ToyVectors(), 3);
  EXPECT_EQ(index.num_docs(), 5u);
  EXPECT_EQ(index.num_terms(), 3u);
  EXPECT_EQ(index.TotalPostings(), 6u);
}

TEST(InvertedIndexTest, EmptyCollection) {
  InvertedIndex index;
  index.Build({}, 0);
  EXPECT_EQ(index.num_docs(), 0u);
  EXPECT_EQ(index.num_terms(), 0u);
  EXPECT_EQ(index.TotalPostings(), 0u);
}

TEST(InvertedIndexTest, TermWithNoPostings) {
  InvertedIndex index;
  index.Build({SparseVector::FromEntries({{0, 1.0}})}, 3);
  EXPECT_TRUE(index.postings(1).empty());
  EXPECT_TRUE(index.postings(2).empty());
}

TEST(InvertedIndexTest, RebuildReplacesContents) {
  InvertedIndex index;
  index.Build(ToyVectors(), 3);
  index.Build({SparseVector::FromEntries({{0, 1.0}})}, 1);
  EXPECT_EQ(index.num_docs(), 1u);
  EXPECT_EQ(index.TotalPostings(), 1u);
}

}  // namespace
}  // namespace useful::ir
