#include "represent/serialize.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "util/random.h"

namespace useful::represent {
namespace {

Representative MakeRep() {
  Representative rep("engine-7", 1234, RepresentativeKind::kQuadruplet);
  rep.Put("alpha", TermStats{0.5, 0.12, 0.03, 0.4, 617});
  rep.Put("beta", TermStats{0.001, 0.9, 0.0, 0.9, 1});
  rep.Put("", TermStats{0.25, 0.5, 0.1, 0.6, 308});  // empty term survives
  return rep;
}

TEST(SerializeTest, StreamRoundTrip) {
  Representative orig = MakeRep();
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(orig, ss).ok());
  auto loaded = ReadRepresentative(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Representative& rep = loaded.value();
  EXPECT_EQ(rep.engine_name(), "engine-7");
  EXPECT_EQ(rep.num_docs(), 1234u);
  EXPECT_EQ(rep.kind(), RepresentativeKind::kQuadruplet);
  ASSERT_EQ(rep.num_terms(), 3u);
  auto alpha = rep.Find("alpha");
  ASSERT_TRUE(alpha.has_value());
  EXPECT_DOUBLE_EQ(alpha->p, 0.5);
  EXPECT_DOUBLE_EQ(alpha->avg_weight, 0.12);
  EXPECT_DOUBLE_EQ(alpha->stddev, 0.03);
  EXPECT_DOUBLE_EQ(alpha->max_weight, 0.4);
  EXPECT_EQ(alpha->doc_freq, 617u);
  EXPECT_TRUE(rep.Find("").has_value());
}

TEST(SerializeTest, TripletKindRoundTrips) {
  Representative orig("t", 5, RepresentativeKind::kTriplet);
  orig.Put("x", TermStats{0.2, 0.3, 0.1, 0.0, 1});
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(orig, ss).ok());
  auto loaded = ReadRepresentative(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().kind(), RepresentativeKind::kTriplet);
}

TEST(SerializeTest, EmptyRepresentativeRoundTrips) {
  Representative orig("empty", 0, RepresentativeKind::kQuadruplet);
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(orig, ss).ok());
  auto loaded = ReadRepresentative(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_terms(), 0u);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOPE garbage";
  auto r = ReadRepresentative(ss);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(SerializeTest, RejectsTruncatedHeader) {
  std::stringstream ss;
  ss << "URP1";
  auto r = ReadRepresentative(ss);
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, RejectsTruncatedBody) {
  Representative orig = MakeRep();
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(orig, ss).ok());
  std::string bytes = ss.str();
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, 6ul}) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto r = ReadRepresentative(truncated);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  }
}

TEST(SerializeTest, StaleMaxFlagRoundTrips) {
  Representative flagged = MakeRep();
  flagged.set_stale_max(true);
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(flagged, ss).ok());
  auto loaded = ReadRepresentative(ss);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().stale_max());
  // The flag rides the kind byte's high bit; the kind itself survives.
  EXPECT_EQ(loaded.value().kind(), RepresentativeKind::kQuadruplet);

  std::stringstream clean;
  ASSERT_TRUE(WriteRepresentative(MakeRep(), clean).ok());
  auto fresh = ReadRepresentative(clean);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().stale_max());
}

TEST(SerializeTest, RejectsUnknownKind) {
  Representative orig = MakeRep();
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(orig, ss).ok());
  std::string bytes = ss.str();
  bytes[4] = 9;  // kind byte
  std::stringstream bad(bytes);
  auto r = ReadRepresentative(bad);
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, RejectsAbsurdStringLength) {
  // Header: magic, kind, num_docs, then a name length of ~4 GB.
  std::string bytes = "URP1";
  bytes.push_back(1);
  std::uint64_t docs = 1;
  bytes.append(reinterpret_cast<const char*>(&docs), 8);
  std::uint32_t len = 0xfffffff0;
  bytes.append(reinterpret_cast<const char*>(&len), 4);
  std::stringstream bad(bytes);
  auto r = ReadRepresentative(bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

// Builds a valid header (magic, kind, num_docs, name) claiming
// `num_terms` term records; callers append the (possibly short) records.
std::string HeaderClaiming(std::uint64_t num_terms) {
  std::string bytes = "URP1";
  bytes.push_back(1);  // kQuadruplet
  std::uint64_t docs = 10;
  bytes.append(reinterpret_cast<const char*>(&docs), 8);
  std::uint32_t name_len = 3;
  bytes.append(reinterpret_cast<const char*>(&name_len), 4);
  bytes.append("eng");
  bytes.append(reinterpret_cast<const char*>(&num_terms), 8);
  return bytes;
}

TEST(SerializeTest, RejectsTruncatedTermTable) {
  // Header promises two terms but the body carries only one full record.
  std::string bytes = HeaderClaiming(2);
  std::uint32_t term_len = 5;
  bytes.append(reinterpret_cast<const char*>(&term_len), 4);
  bytes.append("alpha");
  std::uint32_t doc_freq = 4;
  bytes.append(reinterpret_cast<const char*>(&doc_freq), 4);
  double numbers[4] = {0.4, 0.5, 0.1, 0.9};
  bytes.append(reinterpret_cast<const char*>(numbers), sizeof(numbers));
  std::stringstream in(bytes);
  auto r = ReadRepresentative(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(SerializeTest, RejectsTruncatedTermStringBody) {
  // A term announces 100 bytes but the stream ends after 3.
  std::string bytes = HeaderClaiming(1);
  std::uint32_t term_len = 100;
  bytes.append(reinterpret_cast<const char*>(&term_len), 4);
  bytes.append("abc");
  // Enough trailing bytes to pass the up-front terms-vs-stream-size bound
  // (one minimum-width record), but short of the 100 announced above.
  bytes.append(36, '\0');
  std::stringstream in(bytes);
  auto r = ReadRepresentative(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  EXPECT_NE(r.status().message().find("truncated string body"),
            std::string::npos);
}

TEST(SerializeTest, RejectsTermLengthOverCap) {
  // Term length just past kMaxStringLen (1 MiB) must fail cleanly before
  // any allocation, not attempt a giant read.
  std::string bytes = HeaderClaiming(1);
  std::uint32_t term_len = (1u << 20) + 1;
  bytes.append(reinterpret_cast<const char*>(&term_len), 4);
  // Pad past the up-front terms-vs-stream-size bound so the length-cap
  // check is the one that fires.
  bytes.append(36, '\0');
  std::stringstream in(bytes);
  auto r = ReadRepresentative(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  EXPECT_NE(r.status().message().find("string too long"), std::string::npos);
}

TEST(SerializeTest, WriteRejectsTermOverCap) {
  // A term longer than the reader's kMaxStringLen cap must fail at WRITE
  // time: the old code silently truncated the length to u32 semantics and
  // reported OK for a file every reader rejects as corrupt.
  Representative rep("engine", 10, RepresentativeKind::kQuadruplet);
  rep.Put(std::string((1u << 20) + 1, 'x'), TermStats{0.1, 0.2, 0.1, 0.3, 1});
  std::stringstream ss;
  Status s = WriteRepresentative(rep, ss);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.message().find("serialization cap"), std::string::npos);
}

TEST(SerializeTest, WriteRejectsEngineNameOverCap) {
  Representative rep(std::string((1u << 20) + 1, 'n'), 10,
                     RepresentativeKind::kQuadruplet);
  rep.Put("ok", TermStats{0.1, 0.2, 0.1, 0.3, 1});
  std::stringstream ss;
  Status s = WriteRepresentative(rep, ss);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(SerializeTest, SaveReportsOversizedStringInsteadOfOk) {
  auto path = std::filesystem::temp_directory_path() / "useful_rep_cap.bin";
  Representative rep("engine", 10, RepresentativeKind::kQuadruplet);
  rep.Put(std::string((1u << 20) + 1, 'x'), TermStats{0.1, 0.2, 0.1, 0.3, 1});
  EXPECT_FALSE(SaveRepresentative(rep, path.string()).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, MaxLengthStringStillWrites) {
  Representative rep("engine", 10, RepresentativeKind::kQuadruplet);
  rep.Put(std::string(1u << 20, 'x'), TermStats{0.1, 0.2, 0.1, 0.3, 1});
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(rep, ss).ok());
  auto loaded = ReadRepresentative(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_terms(), 1u);
}

TEST(SerializeTest, RejectsTermCountExceedingStreamSize) {
  // A 50-ish byte file claiming a billion terms must be rejected from the
  // header alone (the old reader ground through an incremental-allocation
  // loop until it happened to hit EOF).
  std::string bytes = HeaderClaiming(1'000'000'000ull);
  std::stringstream in(bytes);
  auto r = ReadRepresentative(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
  EXPECT_NE(r.status().message().find("term count exceeds stream size"),
            std::string::npos);
}

TEST(SerializeTest, TermCountBoundUsesMinimumRecordWidth) {
  // Exactly enough bytes for one minimum-width record but a count of two:
  // still rejected up front.
  std::string bytes = HeaderClaiming(2);
  bytes.append(40, '\0');  // one minimum-width record's worth of bytes
  std::stringstream in(bytes);
  auto r = ReadRepresentative(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST(SerializeTest, FileRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "useful_rep_test.bin";
  Representative orig = MakeRep();
  ASSERT_TRUE(SaveRepresentative(orig, path.string()).ok());
  auto loaded = LoadRepresentative(path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_terms(), orig.num_terms());
  std::filesystem::remove(path);
}

TEST(SerializeTest, LoadMissingFileFails) {
  auto r = LoadRepresentative("/nonexistent/rep.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST(SerializeTest, LargeRepresentativeRoundTrip) {
  Pcg32 rng(9);
  Representative orig("big", 100000, RepresentativeKind::kQuadruplet);
  for (int i = 0; i < 20000; ++i) {
    TermStats ts;
    ts.p = rng.NextDouble();
    ts.avg_weight = rng.NextDouble();
    ts.stddev = rng.NextDouble() * 0.1;
    ts.max_weight = ts.avg_weight + ts.stddev;
    ts.doc_freq = rng.NextBounded(100000);
    orig.Put("term" + std::to_string(i), ts);
  }
  std::stringstream ss;
  ASSERT_TRUE(WriteRepresentative(orig, ss).ok());
  auto loaded = ReadRepresentative(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_terms(), 20000u);
  auto t = loaded.value().Find("term12345");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->p, orig.Find("term12345")->p);
}

}  // namespace
}  // namespace useful::represent
