#include "represent/store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "estimate/registry.h"
#include "estimate/resolved_query.h"
#include "ir/query.h"
#include "represent/quantized.h"
#include "represent/serialize.h"
#include "util/random.h"

namespace useful::represent {
namespace {

Representative MakeRep(const std::string& name, std::size_t terms,
                       std::uint64_t seed, RepresentativeKind kind,
                       std::size_t num_docs = 1000) {
  Pcg32 rng(seed);
  Representative rep(name, num_docs, kind);
  // Shared-prefix heavy vocabulary to exercise front coding.
  const char* stems[] = {"inter", "trans", "micro", "anti", "re", "z"};
  for (std::size_t i = 0; i < terms; ++i) {
    std::string term = stems[rng.NextBounded(6)];
    term += "term" + std::to_string(rng.NextBounded(10000));
    TermStats ts;
    ts.doc_freq = static_cast<std::uint32_t>(rng.NextBounded(
        static_cast<std::uint32_t>(num_docs) + 1));
    ts.p = num_docs == 0 ? 0.0
                         : ts.doc_freq / static_cast<double>(num_docs);
    ts.avg_weight = ts.doc_freq == 0 ? 0.0 : rng.NextDouble() * 0.5 + 0.01;
    ts.stddev = ts.doc_freq == 0 ? 0.0 : rng.NextDouble() * 0.2;
    ts.max_weight = kind == RepresentativeKind::kQuadruplet && ts.doc_freq > 0
                        ? std::min(1.0, ts.avg_weight + 3.0 * ts.stddev)
                        : 0.0;
    rep.Put(std::move(term), ts);
  }
  return rep;
}

std::shared_ptr<const StoreView> MustOpen(std::string bytes) {
  auto r = StoreView::FromBuffer(std::move(bytes));
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.ok() ? r.value() : nullptr;
}

void ExpectSameStats(const TermStats& a, const TermStats& b,
                     const std::string& term) {
  EXPECT_EQ(a.p, b.p) << term;
  EXPECT_EQ(a.avg_weight, b.avg_weight) << term;
  EXPECT_EQ(a.stddev, b.stddev) << term;
  EXPECT_EQ(a.max_weight, b.max_weight) << term;
  EXPECT_EQ(a.doc_freq, b.doc_freq) << term;
}

TEST(StoreTest, PackedStatsBitIdenticalToQuantizer) {
  // The contract the serving path relies on: decoding a packed engine
  // yields exactly QuantizeRepresentative(rep)'s output, bit for bit.
  for (auto kind :
       {RepresentativeKind::kQuadruplet, RepresentativeKind::kTriplet}) {
    Representative rep = MakeRep("db", 700, 42, kind);
    auto quantized = QuantizeRepresentative(rep);
    ASSERT_TRUE(quantized.ok());
    auto image = EncodeStore({&rep});
    ASSERT_TRUE(image.ok()) << image.status().message();
    auto store = MustOpen(std::move(image).value());
    ASSERT_NE(store, nullptr);
    auto view = store->Find("db");
    ASSERT_TRUE(view.has_value());
    EXPECT_EQ(view->num_terms(), rep.num_terms());
    EXPECT_EQ(view->num_docs(), rep.num_docs());
    EXPECT_EQ(view->kind(), kind);
    for (const auto& [term, qs] : quantized.value().representative.stats()) {
      auto packed = view->Find(term);
      ASSERT_TRUE(packed.has_value()) << term;
      ExpectSameStats(*packed, qs, term);
    }
  }
}

TEST(StoreTest, FindMissesCleanly) {
  Representative rep("db", 100, RepresentativeKind::kQuadruplet);
  for (const char* t : {"banana", "band", "bandit", "candle", "candy"}) {
    rep.Put(t, TermStats{0.5, 0.3, 0.1, 0.6, 50});
  }
  auto store = MustOpen(EncodeStore({&rep}).value());
  ASSERT_NE(store, nullptr);
  auto view = store->Find("db");
  ASSERT_TRUE(view.has_value());
  for (const char* t : {"banana", "band", "bandit", "candle", "candy"}) {
    EXPECT_TRUE(view->Find(t).has_value()) << t;
  }
  // Before the first, between entries, after the last, proper prefixes,
  // and extensions of stored terms.
  for (const char* t : {"aaa", "ban", "bandi", "banditz", "bananaz", "bane",
                        "cand", "candz", "zzz", ""}) {
    EXPECT_FALSE(view->Find(t).has_value()) << t;
  }
  EXPECT_FALSE(store->Find("nope").has_value());
}

TEST(StoreTest, MultiEngineStoreFindsEachByName) {
  Representative a = MakeRep("alpha", 60, 1, RepresentativeKind::kQuadruplet);
  Representative b = MakeRep("beta", 40, 2, RepresentativeKind::kTriplet);
  Representative c = MakeRep("gamma", 90, 3, RepresentativeKind::kQuadruplet);
  c.set_stale_max(true);
  auto store = MustOpen(EncodeStore({&c, &a, &b}).value());
  ASSERT_NE(store, nullptr);
  ASSERT_EQ(store->num_engines(), 3u);
  // Index is name-sorted regardless of input order.
  EXPECT_EQ(store->engine(0).engine_name(), "alpha");
  EXPECT_EQ(store->engine(1).engine_name(), "beta");
  EXPECT_EQ(store->engine(2).engine_name(), "gamma");
  EXPECT_EQ(store->engine(1).kind(), RepresentativeKind::kTriplet);
  EXPECT_FALSE(store->Find("alpha")->stale_max());
  EXPECT_TRUE(store->Find("gamma")->stale_max());
  EXPECT_EQ(store->Find("beta")->num_terms(), b.num_terms());
}

TEST(StoreTest, MaterializeMatchesUrp1RoundTripOfQuantized) {
  // Cross-format equivalence: URPZ decode == URP1 write/read of the
  // quantized representative, field for field.
  Representative rep = MakeRep("db", 450, 7, RepresentativeKind::kQuadruplet);
  rep.set_stale_max(true);
  auto quantized = QuantizeRepresentative(rep);
  ASSERT_TRUE(quantized.ok());
  std::stringstream urp1;
  ASSERT_TRUE(
      WriteRepresentative(quantized.value().representative, urp1).ok());
  auto via_urp1 = ReadRepresentative(urp1);
  ASSERT_TRUE(via_urp1.ok());

  auto store = MustOpen(EncodeStore({&rep}).value());
  ASSERT_NE(store, nullptr);
  Representative via_urpz = store->Find("db")->Materialize();

  EXPECT_EQ(via_urpz.engine_name(), via_urp1.value().engine_name());
  EXPECT_EQ(via_urpz.num_docs(), via_urp1.value().num_docs());
  EXPECT_EQ(via_urpz.kind(), via_urp1.value().kind());
  EXPECT_EQ(via_urpz.stale_max(), via_urp1.value().stale_max());
  ASSERT_EQ(via_urpz.num_terms(), via_urp1.value().num_terms());
  for (const auto& [term, ts] : via_urp1.value().stats()) {
    auto packed = via_urpz.Find(term);
    ASSERT_TRUE(packed.has_value()) << term;
    ExpectSameStats(*packed, ts, term);
  }
}

TEST(StoreTest, RandomizedRoundTripProperty) {
  // Property sweep: random representatives of both kinds, stale flag set
  // and clear, tiny through moderate sizes, zero-doc-freq terms included.
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    const auto kind = seed % 2 == 0 ? RepresentativeKind::kQuadruplet
                                    : RepresentativeKind::kTriplet;
    Representative rep =
        MakeRep("eng" + std::to_string(seed), 1 + seed * 17 % 400, seed, kind);
    rep.set_stale_max(seed % 3 == 0);
    auto quantized = QuantizeRepresentative(rep);
    ASSERT_TRUE(quantized.ok());
    auto store = MustOpen(EncodeStore({&rep}).value());
    ASSERT_NE(store, nullptr);
    auto view = store->Find(rep.engine_name());
    ASSERT_TRUE(view.has_value()) << seed;
    EXPECT_EQ(view->stale_max(), rep.stale_max()) << seed;
    std::size_t seen = 0;
    view->ForEachTerm([&](std::string_view term, const TermStats& ts) {
      auto expected = quantized.value().representative.Find(term);
      ASSERT_TRUE(expected.has_value()) << term;
      ExpectSameStats(ts, *expected, std::string(term));
      ++seen;
    });
    EXPECT_EQ(seen, rep.num_terms()) << seed;
  }
}

TEST(StoreTest, AnnotatedQueriesEstimateBitIdenticallyAcrossFormats) {
  // Weighted / negated / min-should-match queries over the packed
  // StoreView must estimate bit-identically to the quantized in-memory
  // representative (the URP1 write/read path) — the serving tier may use
  // either backing for the same engine.
  Representative rep = MakeRep("db", 300, 11, RepresentativeKind::kQuadruplet);
  auto quantized = QuantizeRepresentative(rep);
  ASSERT_TRUE(quantized.ok());
  std::stringstream urp1;
  ASSERT_TRUE(
      WriteRepresentative(quantized.value().representative, urp1).ok());
  auto via_urp1 = ReadRepresentative(urp1);
  ASSERT_TRUE(via_urp1.ok());
  auto store = MustOpen(EncodeStore({&rep}).value());
  ASSERT_NE(store, nullptr);
  auto view = store->Find("db");
  ASSERT_TRUE(view.has_value());

  // Deterministic term pool: the store's own ascending term order.
  std::vector<std::string> terms;
  view->ForEachTerm([&](std::string_view term, const TermStats&) {
    if (terms.size() < 6) terms.emplace_back(term);
  });
  ASSERT_GE(terms.size(), 4u);

  // Hand-built annotated queries (no analyzer: stored terms are already
  // index terms). Weights are the cosine-normalized form the parser emits.
  std::vector<ir::Query> queries;
  {
    ir::Query weighted;
    const double norm = std::sqrt(2.5 * 2.5 + 1.0 + 1.0);
    weighted.terms = {ir::QueryTerm{terms[0], 2.5 / norm, 2.5, false},
                      ir::QueryTerm{terms[1], 1.0 / norm, 1.0, false},
                      ir::QueryTerm{terms[2], 1.0 / norm, 1.0, false}};
    queries.push_back(weighted);

    ir::Query negated = weighted;
    negated.terms[1].negated = true;
    queries.push_back(negated);

    ir::Query msm = weighted;
    msm.min_should_match = 2;
    queries.push_back(msm);

    ir::Query all = weighted;
    all.terms[0].negated = true;
    all.min_should_match = 1;
    all.terms.push_back(
        ir::QueryTerm{terms[3], 0.5 / norm, 0.5, false});
    queries.push_back(all);
  }

  const std::vector<double> thresholds = {0.0, 0.01, 0.05, 0.15, 0.4};
  std::vector<std::string> names = estimate::KnownEstimators();
  names.push_back("subrange-k3");
  estimate::ExpansionWorkspace ws;
  for (const std::string& name : names) {
    auto est = estimate::MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    for (const ir::Query& q : queries) {
      estimate::ResolvedQuery rq_view(*view, q);
      estimate::ResolvedQuery rq_rep(via_urp1.value(), q);
      std::vector<estimate::UsefulnessEstimate> from_view(thresholds.size());
      std::vector<estimate::UsefulnessEstimate> from_rep(thresholds.size());
      est.value()->EstimateBatch(
          rq_view, thresholds, ws,
          std::span<estimate::UsefulnessEstimate>(from_view));
      est.value()->EstimateBatch(
          rq_rep, thresholds, ws,
          std::span<estimate::UsefulnessEstimate>(from_rep));
      for (std::size_t t = 0; t < thresholds.size(); ++t) {
        EXPECT_EQ(from_view[t].no_doc, from_rep[t].no_doc)
            << name << " T=" << thresholds[t];
        EXPECT_EQ(from_view[t].avg_sim, from_rep[t].avg_sim)
            << name << " T=" << thresholds[t];
      }
    }
  }
}

TEST(StoreTest, EncodingIsByteStableAcrossInsertionOrder) {
  Representative fwd("db", 500, RepresentativeKind::kQuadruplet);
  Representative rev("db", 500, RepresentativeKind::kQuadruplet);
  Representative probe = MakeRep("db", 300, 5, RepresentativeKind::kQuadruplet);
  std::vector<std::pair<std::string, TermStats>> entries(
      probe.stats().begin(), probe.stats().end());
  for (const auto& [t, ts] : entries) fwd.Put(t, ts);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    rev.Put(it->first, it->second);
  }
  auto a = EncodeStore({&fwd});
  auto b = EncodeStore({&rev});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(StoreTest, GoldenImageIsByteStable) {
  // The on-disk format is a published contract: the same logical input
  // must keep producing the identical image across refactors. If this
  // test fails because of an INTENTIONAL format change, bump kVersion in
  // store.cc and re-pin these constants; any other failure means the
  // packer drifted and deployed stores would stop matching their golden
  // checksums.
  Representative a = MakeRep("golden-a", 200, 123,
                             RepresentativeKind::kQuadruplet);
  Representative b = MakeRep("golden-b", 80, 321,
                             RepresentativeKind::kTriplet);
  b.set_stale_max(true);
  auto image = EncodeStore({&a, &b});
  ASSERT_TRUE(image.ok());
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64
  for (unsigned char c : image.value()) {
    hash = (hash ^ c) * 1099511628211ull;
  }
  EXPECT_EQ(image.value().size(), 17368u);
  EXPECT_EQ(hash, 13515083161455886426ull);
}

TEST(StoreTest, OpenFromFileMatchesBuffer) {
  Representative rep = MakeRep("db", 250, 9, RepresentativeKind::kQuadruplet);
  const std::string path = ::testing::TempDir() + "/store_test.urpz";
  ASSERT_TRUE(PackStoreToFile({&rep}, path).ok());

  auto sniff = SniffPackedStore(path);
  ASSERT_TRUE(sniff.ok());
  EXPECT_TRUE(sniff.value());

  auto mapped = StoreView::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  auto image = EncodeStore({&rep});
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(mapped.value()->file_bytes(), image.value().size());
  auto buffered = MustOpen(std::move(image).value());
  ASSERT_NE(buffered, nullptr);
  auto vm = mapped.value()->Find("db");
  auto vb = buffered->Find("db");
  ASSERT_TRUE(vm.has_value());
  ASSERT_TRUE(vb.has_value());
  for (const auto& [term, ts] : rep.stats()) {
    auto sm = vm->Find(term);
    auto sb = vb->Find(term);
    ASSERT_TRUE(sm.has_value()) << term;
    ASSERT_TRUE(sb.has_value()) << term;
    ExpectSameStats(*sm, *sb, term);
  }
  std::remove(path.c_str());
}

TEST(StoreTest, SniffDistinguishesUrp1) {
  Representative rep = MakeRep("db", 20, 11, RepresentativeKind::kQuadruplet);
  const std::string path = ::testing::TempDir() + "/store_test.rep";
  ASSERT_TRUE(SaveRepresentative(rep, path).ok());
  auto sniff = SniffPackedStore(path);
  ASSERT_TRUE(sniff.ok());
  EXPECT_FALSE(sniff.value());
  std::remove(path.c_str());
}

TEST(StoreTest, RejectsEmptyRepresentative) {
  Representative rep("db", 10, RepresentativeKind::kQuadruplet);
  auto r = EncodeStore({&rep});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
}

TEST(StoreTest, RejectsDuplicateEngineNames) {
  Representative a = MakeRep("db", 10, 1, RepresentativeKind::kQuadruplet);
  Representative b = MakeRep("db", 10, 2, RepresentativeKind::kQuadruplet);
  auto r = EncodeStore({&a, &b});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST(StoreTest, EmptyStoreRoundTrips) {
  auto image = EncodeStore({});
  ASSERT_TRUE(image.ok());
  auto store = MustOpen(std::move(image).value());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->num_engines(), 0u);
  EXPECT_FALSE(store->Find("anything").has_value());
}

// --- Corruption battery: every header/section invariant the validator
// enforces, exercised by flipping bytes of a valid image. ----------------

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Representative rep =
        MakeRep("db", 120, 33, RepresentativeKind::kQuadruplet);
    auto image = EncodeStore({&rep});
    ASSERT_TRUE(image.ok());
    image_ = std::move(image).value();
  }

  void ExpectCorrupt(std::string bytes, const char* what) {
    auto r = StoreView::FromBuffer(std::move(bytes));
    ASSERT_FALSE(r.ok()) << what;
    EXPECT_EQ(r.status().code(), Status::Code::kCorruption) << what;
  }

  void Patch32(std::string* bytes, std::size_t off, std::uint32_t v) {
    std::memcpy(bytes->data() + off, &v, 4);
  }
  void Patch64(std::string* bytes, std::size_t off, std::uint64_t v) {
    std::memcpy(bytes->data() + off, &v, 8);
  }

  std::string image_;
};

TEST_F(StoreCorruptionTest, RejectsShortFile) {
  ExpectCorrupt(image_.substr(0, 16), "short");
  ExpectCorrupt("", "empty");
}

TEST_F(StoreCorruptionTest, RejectsBadMagic) {
  std::string bad = image_;
  bad[0] = 'X';
  ExpectCorrupt(std::move(bad), "magic");
}

TEST_F(StoreCorruptionTest, RejectsUnknownVersion) {
  std::string bad = image_;
  Patch32(&bad, 4, 99);
  ExpectCorrupt(std::move(bad), "version");
}

TEST_F(StoreCorruptionTest, RejectsSizeMismatch) {
  std::string bad = image_ + "extra";
  ExpectCorrupt(std::move(bad), "appended bytes");
  std::string truncated = image_.substr(0, image_.size() - 3);
  ExpectCorrupt(std::move(truncated), "truncated");
}

TEST_F(StoreCorruptionTest, RejectsIndexOffsetOutOfBounds) {
  std::string bad = image_;
  Patch64(&bad, 16, bad.size() + 100);
  ExpectCorrupt(std::move(bad), "index offset");
}

TEST_F(StoreCorruptionTest, RejectsBlockOutOfBounds) {
  std::string bad = image_;
  std::uint64_t index_off;
  std::memcpy(&index_off, bad.data() + 16, 8);
  Patch64(&bad, index_off, bad.size());  // engine block_offset
  ExpectCorrupt(std::move(bad), "block offset");
}

TEST_F(StoreCorruptionTest, RejectsRestartCountMismatch) {
  std::string bad = image_;
  Patch32(&bad, 32 + 28, 1);  // num_restarts of first engine block
  ExpectCorrupt(std::move(bad), "restart count");
}

TEST_F(StoreCorruptionTest, RejectsTermCountMismatch) {
  std::string bad = image_;
  Patch64(&bad, 32 + 16, 7);  // num_terms
  ExpectCorrupt(std::move(bad), "term count");
}

TEST_F(StoreCorruptionTest, RejectsFieldCountKindMismatch) {
  std::string bad = image_;
  Patch32(&bad, 32 + 4, 3);  // num_fields, but kind says quadruplet
  ExpectCorrupt(std::move(bad), "field count");
}

TEST_F(StoreCorruptionTest, RejectsGarbledTermBlob) {
  // Zero the whole term section: varints become nonsense relative to the
  // declared sizes and the ascending-order walk must fail.
  std::string bad = image_;
  std::uint64_t terms_off, terms_bytes;
  std::memcpy(&terms_off, bad.data() + 32 + 48, 8);
  std::memcpy(&terms_bytes, bad.data() + 32 + 56, 8);
  std::memset(bad.data() + 32 + terms_off, 0,
              static_cast<std::size_t>(terms_bytes));
  ExpectCorrupt(std::move(bad), "garbled terms");
}

TEST_F(StoreCorruptionTest, RejectsUnsortedIndex) {
  Representative a = MakeRep("aaa", 30, 1, RepresentativeKind::kQuadruplet);
  Representative b = MakeRep("bbb", 30, 2, RepresentativeKind::kQuadruplet);
  auto image = EncodeStore({&a, &b});
  ASSERT_TRUE(image.ok());
  std::string bad = std::move(image).value();
  std::uint64_t index_off;
  std::memcpy(&index_off, bad.data() + 16, 8);
  // Swap the two names ("aaa" <-> "bbb") inside the index records.
  char* first = bad.data() + index_off + 20;
  char* second = bad.data() + index_off + 20 + 3 + 20;
  for (int i = 0; i < 3; ++i) std::swap(first[i], second[i]);
  ExpectCorrupt(std::move(bad), "unsorted index");
}

}  // namespace
}  // namespace useful::represent
