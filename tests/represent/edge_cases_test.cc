// Degenerate-shape edge cases for the representative pipeline: merges of
// engines with disjoint vocabularies, empty databases, terms whose weight
// never varies (sigma == 0), and terms contained in every document
// (p == 1). Each must flow through build -> save -> load -> estimate as a
// clean Status and finite numbers — never UB, NaN, or a crash.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "estimate/registry.h"
#include "ir/query.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/merge.h"
#include "represent/serialize.h"
#include "text/analyzer.h"

namespace useful::represent {
namespace {

class RepresentativeEdgeCasesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("useful_rep_edge_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  Representative BuildFrom(const std::string& name,
                           const std::vector<std::string>& docs) {
    ir::SearchEngine engine(name, &analyzer_);
    int i = 0;
    for (const std::string& text : docs) {
      EXPECT_TRUE(engine.Add({name + "/d" + std::to_string(i++), text}).ok());
    }
    EXPECT_TRUE(engine.Finalize().ok());
    auto rep = BuildRepresentative(engine);
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    return std::move(rep).value();
  }

  /// Save -> load round trip; the loader must accept whatever the
  /// builder/merger produced.
  Representative Reload(const Representative& rep) {
    std::string path = (dir_ / (rep.engine_name() + ".rep")).string();
    EXPECT_TRUE(SaveRepresentative(rep, path).ok());
    auto loaded = LoadRepresentative(path);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return std::move(loaded).value();
  }

  /// Every registered estimator must yield finite, in-range numbers.
  void ExpectEstimatesSane(const Representative& rep,
                           const std::string& query_text) {
    ir::Query q = ir::ParseQuery(analyzer_, query_text);
    for (const std::string& name : estimate::KnownEstimators()) {
      auto estimator = estimate::MakeEstimator(name).value();
      for (double t : {0.0, 0.2, 0.5}) {
        auto est = estimator->Estimate(rep, q, t);
        EXPECT_TRUE(std::isfinite(est.no_doc))
            << name << " " << query_text << " T=" << t;
        EXPECT_TRUE(std::isfinite(est.avg_sim))
            << name << " " << query_text << " T=" << t;
        EXPECT_GE(est.no_doc, 0.0) << name;
        EXPECT_GE(est.avg_sim, 0.0) << name;
      }
    }
  }

  text::Analyzer analyzer_;
  std::filesystem::path dir_;
};

TEST_F(RepresentativeEdgeCasesTest, MergeWithMismatchedVocabularies) {
  // Completely disjoint vocabularies: the merged representative must be
  // the clean union, with each term's df unchanged and p rescaled.
  Representative a = BuildFrom("a", {"zq0x zq1x", "zq0x zq2x"});
  Representative b = BuildFrom("b", {"zq7x zq8x", "zq8x zq9x", "zq9x"});
  auto merged = MergeRepresentatives({&a, &b}, "union");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  Representative loaded = Reload(merged.value());

  EXPECT_EQ(loaded.num_docs(), 5u);
  EXPECT_EQ(loaded.num_terms(), a.num_terms() + b.num_terms());
  auto zq0 = loaded.Find("zq0x");
  ASSERT_TRUE(zq0.has_value());
  EXPECT_EQ(zq0->doc_freq, 2u);
  EXPECT_DOUBLE_EQ(zq0->p, 2.0 / 5.0);
  auto zq9 = loaded.Find("zq9x");
  ASSERT_TRUE(zq9.has_value());
  EXPECT_EQ(zq9->doc_freq, 2u);
  // A term of one part keeps its statistics (only p is rescaled).
  EXPECT_DOUBLE_EQ(zq9->avg_weight, b.Find("zq9x")->avg_weight);

  ExpectEstimatesSane(loaded, "zq0x zq9x");
}

TEST_F(RepresentativeEdgeCasesTest, MergeRejectsMixedKindsCleanly) {
  ir::SearchEngine engine("t", &analyzer_);
  ASSERT_TRUE(engine.Add({"d0", "zq0x"}).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  Representative quad =
      BuildRepresentative(engine, RepresentativeKind::kQuadruplet).value();
  Representative trip =
      BuildRepresentative(engine, RepresentativeKind::kTriplet).value();
  auto merged = MergeRepresentatives({&quad, &trip}, "bad");
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(RepresentativeEdgeCasesTest, ZeroDocumentEngineIsRejectedCleanly) {
  ir::SearchEngine engine("empty", &analyzer_);
  ASSERT_TRUE(engine.Finalize().ok());
  auto rep = BuildRepresentative(engine);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), Status::Code::kFailedPrecondition);

  // And a merge must refuse an n == 0 part rather than divide by zero.
  Representative hollow("hollow", 0, RepresentativeKind::kQuadruplet);
  Representative fine = BuildFrom("fine", {"zq0x"});
  auto merged = MergeRepresentatives({&hollow, &fine}, "bad");
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(RepresentativeEdgeCasesTest, SigmaZeroTermEstimatesCleanly) {
  // Every document is identical, so each term's normalized weight never
  // varies: population stddev is exactly 0.
  Representative rep =
      BuildFrom("flat", {"zq0x zq1x", "zq0x zq1x", "zq0x zq1x"});
  auto ts = rep.Find("zq0x");
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->stddev, 0.0);
  EXPECT_GT(ts->max_weight, 0.0);

  Representative loaded = Reload(rep);
  EXPECT_EQ(loaded.Find("zq0x")->stddev, 0.0);
  ExpectEstimatesSane(loaded, "zq0x");
  ExpectEstimatesSane(loaded, "zq0x zq1x");
}

TEST_F(RepresentativeEdgeCasesTest, ProbabilityOneTermEstimatesCleanly) {
  // zq0x occurs in all documents: p == 1, so the "term absent" factor
  // (1 - p) of the generating function is exactly zero.
  Representative rep =
      BuildFrom("all", {"zq0x zq1x", "zq0x zq2x", "zq0x zq0x zq3x"});
  auto ts = rep.Find("zq0x");
  ASSERT_TRUE(ts.has_value());
  EXPECT_DOUBLE_EQ(ts->p, 1.0);

  Representative loaded = Reload(rep);
  EXPECT_DOUBLE_EQ(loaded.Find("zq0x")->p, 1.0);
  ExpectEstimatesSane(loaded, "zq0x");
  ExpectEstimatesSane(loaded, "zq0x zq2x zq3x");

  // NoDoc at T = 0 must see every document for the subrange method.
  auto subrange = estimate::MakeEstimator("subrange").value();
  ir::Query q = ir::ParseQuery(analyzer_, "zq0x");
  EXPECT_NEAR(subrange->Estimate(loaded, q, 0.0).no_doc, 3.0, 1e-9);
}

}  // namespace
}  // namespace useful::represent
