// Robustness of the representative reader against corrupted input: random
// byte flips and truncations must never crash, hang, or allocate absurdly
// — they either fail with Corruption/IOError or (rarely, when the flip
// lands in a numeric payload) yield a structurally valid representative.
#include <gtest/gtest.h>

#include <sstream>

#include "represent/serialize.h"
#include "util/random.h"

namespace useful::represent {
namespace {

std::string SerializedFixture() {
  Representative rep("fuzz-engine", 321, RepresentativeKind::kQuadruplet);
  Pcg32 rng(7);
  for (int i = 0; i < 64; ++i) {
    TermStats ts;
    ts.p = rng.NextDouble();
    ts.avg_weight = rng.NextDouble();
    ts.stddev = rng.NextDouble() * 0.2;
    ts.max_weight = ts.avg_weight + ts.stddev;
    ts.doc_freq = 1 + rng.NextBounded(320);
    rep.Put("term" + std::to_string(i), ts);
  }
  std::stringstream out;
  EXPECT_TRUE(WriteRepresentative(rep, out).ok());
  return out.str();
}

class SerializeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeFuzz, SingleByteFlipsNeverCrash) {
  const std::string bytes = SerializedFixture();
  Pcg32 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    std::size_t pos = rng.NextBounded(static_cast<std::uint32_t>(
        mutated.size()));
    mutated[pos] =
        static_cast<char>(mutated[pos] ^ (1 + rng.NextBounded(255)));
    std::stringstream in(mutated);
    auto r = ReadRepresentative(in);
    if (r.ok()) {
      // A surviving parse must still be structurally sound.
      EXPECT_LE(r.value().num_terms(), 64u);
    } else {
      EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
    }
  }
}

TEST_P(SerializeFuzz, MultiByteScramblesNeverCrash) {
  const std::string bytes = SerializedFixture();
  Pcg32 rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = bytes;
    int flips = 2 + static_cast<int>(rng.NextBounded(30));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = rng.NextBounded(static_cast<std::uint32_t>(
          mutated.size()));
      mutated[pos] = static_cast<char>(rng.NextU32());
    }
    std::stringstream in(mutated);
    auto r = ReadRepresentative(in);
    (void)r;  // any outcome is fine as long as it returns
    SUCCEED();
  }
}

TEST_P(SerializeFuzz, RandomTruncationsFailCleanly) {
  const std::string bytes = SerializedFixture();
  Pcg32 rng(GetParam() ^ 0xcafe);
  for (int trial = 0; trial < 100; ++trial) {
    std::size_t cut = rng.NextBounded(
        static_cast<std::uint32_t>(bytes.size()));  // strictly shorter
    std::stringstream in(bytes.substr(0, cut));
    auto r = ReadRepresentative(in);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST_P(SerializeFuzz, RandomGarbageFailsCleanly) {
  Pcg32 rng(GetParam() ^ 0xdead);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage(8 + rng.NextBounded(512), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextU32());
    std::stringstream in(garbage);
    auto r = ReadRepresentative(in);
    EXPECT_FALSE(r.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz,
                         ::testing::Values(1, 2, 3, 17, 255));

}  // namespace
}  // namespace useful::represent
