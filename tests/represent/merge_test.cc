#include "represent/merge.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "corpus/newsgroup_sim.h"
#include "ir/search_engine.h"
#include "represent/builder.h"

namespace useful::represent {
namespace {

class MergeTest : public ::testing::Test {
 protected:
  std::unique_ptr<ir::SearchEngine> Index(const corpus::Collection& c) {
    auto engine = std::make_unique<ir::SearchEngine>(c.name(), &analyzer_);
    EXPECT_TRUE(engine->AddCollection(c).ok());
    EXPECT_TRUE(engine->Finalize().ok());
    return engine;
  }
  Representative Rep(const corpus::Collection& c,
                     RepresentativeKind kind =
                         RepresentativeKind::kQuadruplet) {
    auto engine = Index(c);
    return std::move(BuildRepresentative(*engine, kind)).value();
  }
  text::Analyzer analyzer_;
};

TEST_F(MergeTest, MergedRepEqualsRepOfMergedCollection) {
  // The paper's D2 construction, done two ways: merge collections then
  // summarize, vs summarize then merge representatives. Must agree.
  corpus::NewsgroupSimOptions opts;
  opts.num_groups = 4;
  opts.vocabulary_size = 2500;
  opts.topical_terms_per_group = 120;
  opts.median_doc_length = 40.0;
  corpus::NewsgroupSimulator sim(opts);

  Representative rep_a = Rep(sim.groups()[0]);
  Representative rep_b = Rep(sim.groups()[1]);

  corpus::Collection both("both");
  both.Merge(sim.groups()[0]);
  both.Merge(sim.groups()[1]);
  Representative direct = Rep(both);

  auto merged = MergeRepresentatives({&rep_a, &rep_b}, "both");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().num_docs(), direct.num_docs());
  ASSERT_EQ(merged.value().num_terms(), direct.num_terms());
  for (const auto& [term, expected] : direct.stats()) {
    auto got = merged.value().Find(term);
    ASSERT_TRUE(got.has_value()) << term;
    EXPECT_EQ(got->doc_freq, expected.doc_freq) << term;
    EXPECT_NEAR(got->p, expected.p, 1e-12) << term;
    EXPECT_NEAR(got->avg_weight, expected.avg_weight, 1e-9) << term;
    EXPECT_NEAR(got->stddev, expected.stddev, 1e-7) << term;
    EXPECT_NEAR(got->max_weight, expected.max_weight, 1e-12) << term;
  }
}

TEST_F(MergeTest, HandMergedMoments) {
  // Two single-term reps with known moments.
  Representative a("a", 4, RepresentativeKind::kQuadruplet);
  a.Put("t", TermStats{0.5, 0.3, 0.1, 0.5, 2});  // weights with mean .3 sd .1
  Representative b("b", 6, RepresentativeKind::kQuadruplet);
  b.Put("t", TermStats{0.5, 0.5, 0.2, 0.8, 3});

  auto merged = MergeRepresentatives({&a, &b}, "ab");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().num_docs(), 10u);
  auto t = merged.value().Find("t");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->doc_freq, 5u);
  EXPECT_NEAR(t->p, 0.5, 1e-12);
  // Weighted mean: (2*0.3 + 3*0.5)/5 = 0.42.
  EXPECT_NEAR(t->avg_weight, 0.42, 1e-12);
  // Pooled E[w^2] = (2*(0.01+0.09) + 3*(0.04+0.25))/5 = 0.214;
  // sigma = sqrt(0.214 - 0.42^2) = sqrt(0.0376).
  EXPECT_NEAR(t->stddev, std::sqrt(0.0376), 1e-12);
  EXPECT_DOUBLE_EQ(t->max_weight, 0.8);
}

TEST_F(MergeTest, DisjointVocabulariesUnion) {
  Representative a("a", 2, RepresentativeKind::kQuadruplet);
  a.Put("only-a", TermStats{0.5, 0.4, 0.0, 0.4, 1});
  Representative b("b", 3, RepresentativeKind::kQuadruplet);
  b.Put("only-b", TermStats{1.0, 0.2, 0.05, 0.3, 3});

  auto merged = MergeRepresentatives({&a, &b}, "ab");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().num_terms(), 2u);
  EXPECT_NEAR(merged.value().Find("only-a")->p, 0.2, 1e-12);  // 1/5
  EXPECT_NEAR(merged.value().Find("only-b")->p, 0.6, 1e-12);  // 3/5
}

TEST_F(MergeTest, SinglePartIsIdentity) {
  Representative a("a", 3, RepresentativeKind::kTriplet);
  a.Put("t", TermStats{1.0 / 3.0, 0.25, 0.1, 0.0, 1});
  auto merged = MergeRepresentatives({&a}, "same");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().num_docs(), 3u);
  EXPECT_NEAR(merged.value().Find("t")->avg_weight, 0.25, 1e-12);
  EXPECT_EQ(merged.value().kind(), RepresentativeKind::kTriplet);
}

TEST_F(MergeTest, RejectsEmptyInput) {
  EXPECT_FALSE(MergeRepresentatives({}, "x").ok());
}

TEST_F(MergeTest, RejectsNullPart) {
  Representative a("a", 1, RepresentativeKind::kQuadruplet);
  EXPECT_FALSE(MergeRepresentatives({&a, nullptr}, "x").ok());
}

TEST_F(MergeTest, RejectsMixedKinds) {
  Representative a("a", 1, RepresentativeKind::kQuadruplet);
  Representative b("b", 1, RepresentativeKind::kTriplet);
  a.Put("t", TermStats{1, 0.1, 0, 0.1, 1});
  b.Put("t", TermStats{1, 0.1, 0, 0.0, 1});
  auto r = MergeRepresentatives({&a, &b}, "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(MergeTest, RejectsEmptyDatabasePart) {
  Representative a("a", 0, RepresentativeKind::kQuadruplet);
  Representative b("b", 1, RepresentativeKind::kQuadruplet);
  EXPECT_FALSE(MergeRepresentatives({&a, &b}, "x").ok());
}

}  // namespace
}  // namespace useful::represent
