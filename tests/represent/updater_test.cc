#include "represent/updater.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ir/search_engine.h"
#include "represent/builder.h"

namespace useful::represent {
namespace {

corpus::Collection ToyCollection() {
  corpus::Collection c("toy");
  c.Add({"d0", "zorp zorp zorp"});
  c.Add({"d1", "zorp quix"});
  c.Add({"d2", "blat blat"});
  c.Add({"d3", "zorp zorp blat blat"});
  c.Add({"d4", "mumble"});
  return c;
}

class UpdaterTest : public ::testing::Test {
 protected:
  text::Analyzer analyzer_;
};

TEST_F(UpdaterTest, SnapshotMatchesIndexBuilder) {
  // The streaming path must agree exactly with the index-derived path.
  corpus::Collection c = ToyCollection();
  ir::SearchEngine engine("toy", &analyzer_);
  ASSERT_TRUE(engine.AddCollection(c).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  auto from_index = BuildRepresentative(engine);
  ASSERT_TRUE(from_index.ok());

  RepresentativeUpdater updater("toy", &analyzer_);
  for (const corpus::Document& d : c.docs()) updater.Add(d);
  auto from_stream = updater.Snapshot();
  ASSERT_TRUE(from_stream.ok());

  EXPECT_EQ(from_stream.value().num_docs(), from_index.value().num_docs());
  EXPECT_EQ(from_stream.value().num_terms(), from_index.value().num_terms());
  for (const auto& [term, expected] : from_index.value().stats()) {
    auto got = from_stream.value().Find(term);
    ASSERT_TRUE(got.has_value()) << term;
    EXPECT_NEAR(got->p, expected.p, 1e-12) << term;
    EXPECT_NEAR(got->avg_weight, expected.avg_weight, 1e-12) << term;
    EXPECT_NEAR(got->stddev, expected.stddev, 1e-9) << term;
    EXPECT_NEAR(got->max_weight, expected.max_weight, 1e-12) << term;
    EXPECT_EQ(got->doc_freq, expected.doc_freq) << term;
  }
}

TEST_F(UpdaterTest, SnapshotBeforeAnyDocFails) {
  RepresentativeUpdater updater("e", &analyzer_);
  auto r = updater.Snapshot();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(UpdaterTest, AddThenRemoveRestoresStatistics) {
  RepresentativeUpdater updater("e", &analyzer_);
  corpus::Collection c = ToyCollection();
  for (const corpus::Document& d : c.docs()) updater.Add(d);
  auto before = updater.Snapshot();
  ASSERT_TRUE(before.ok());

  corpus::Document extra{"d5", "zorp blat fresh"};
  updater.Add(extra);
  EXPECT_EQ(updater.num_docs(), 6u);
  ASSERT_TRUE(updater.Remove(extra).ok());
  EXPECT_EQ(updater.num_docs(), 5u);

  auto after = updater.Snapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().num_terms(), before.value().num_terms());
  for (const auto& [term, expected] : before.value().stats()) {
    auto got = after.value().Find(term);
    ASSERT_TRUE(got.has_value()) << term;
    EXPECT_NEAR(got->p, expected.p, 1e-12);
    EXPECT_NEAR(got->avg_weight, expected.avg_weight, 1e-9);
    EXPECT_NEAR(got->stddev, expected.stddev, 1e-6);
    EXPECT_EQ(got->doc_freq, expected.doc_freq);
  }
  // "fresh" disappeared entirely.
  EXPECT_FALSE(after.value().Find("fresh").has_value());
}

TEST_F(UpdaterTest, RemovingMaxHolderFlagsRebuild) {
  RepresentativeUpdater updater("e", &analyzer_);
  corpus::Document heavy{"d0", "zorp zorp zorp"};   // zorp weight 1.0
  corpus::Document light{"d1", "zorp quix"};        // zorp weight ~0.707
  updater.Add(heavy);
  updater.Add(light);
  EXPECT_FALSE(updater.needs_rebuild());
  ASSERT_TRUE(updater.Remove(heavy).ok());
  EXPECT_TRUE(updater.needs_rebuild());
  // The remaining stats are still usable; max is an upper bound.
  auto rep = updater.Snapshot();
  ASSERT_TRUE(rep.ok());
  auto zorp = rep.value().Find("zorp");
  ASSERT_TRUE(zorp.has_value());
  EXPECT_EQ(zorp->doc_freq, 1u);
  EXPECT_GE(zorp->max_weight, 1.0 / std::sqrt(2.0) - 1e-12);
}

TEST_F(UpdaterTest, SnapshotCarriesTheStaleMaxFlag) {
  RepresentativeUpdater updater("e", &analyzer_);
  corpus::Document heavy{"d0", "zorp zorp zorp"};
  updater.Add(heavy);
  updater.Add({"d1", "zorp quix"});
  auto fresh = updater.Snapshot();
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().stale_max());
  // Removing the max holder invalidates the stored maxima; the snapshot
  // must say so, so consumers know estimates are only upper bounds.
  ASSERT_TRUE(updater.Remove(heavy).ok());
  auto stale = updater.Snapshot();
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value().stale_max());
}

TEST_F(UpdaterTest, RemovingUnknownDocumentFails) {
  RepresentativeUpdater updater("e", &analyzer_);
  updater.Add({"d0", "zorp"});
  Status s = updater.Remove({"dx", "neverseen"});
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  // State unchanged by the failed removal.
  EXPECT_EQ(updater.num_docs(), 1u);
  EXPECT_TRUE(updater.Snapshot().ok());
}

TEST_F(UpdaterTest, RemoveFromEmptyFails) {
  RepresentativeUpdater updater("e", &analyzer_);
  EXPECT_EQ(updater.Remove({"d", "x"}).code(),
            Status::Code::kFailedPrecondition);
}

TEST_F(UpdaterTest, EmptyDocumentCountsTowardN) {
  RepresentativeUpdater updater("e", &analyzer_);
  updater.Add({"d0", "zorp"});
  updater.Add({"d1", ""});
  auto rep = updater.Snapshot();
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().num_docs(), 2u);
  EXPECT_NEAR(rep.value().Find("zorp")->p, 0.5, 1e-12);
}

TEST_F(UpdaterTest, TripletSnapshot) {
  RepresentativeUpdater updater("e", &analyzer_);
  updater.Add({"d0", "zorp zorp blat"});
  auto rep = updater.Snapshot(RepresentativeKind::kTriplet);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().kind(), RepresentativeKind::kTriplet);
  EXPECT_EQ(rep.value().Find("zorp")->max_weight, 0.0);
}

TEST_F(UpdaterTest, UnnormalizedMode) {
  UpdaterOptions opts;
  opts.cosine_normalize = false;
  RepresentativeUpdater updater("e", &analyzer_, opts);
  updater.Add({"d0", "zorp zorp zorp"});
  updater.Add({"d1", "zorp"});
  auto rep = updater.Snapshot();
  ASSERT_TRUE(rep.ok());
  auto zorp = rep.value().Find("zorp");
  ASSERT_TRUE(zorp.has_value());
  EXPECT_DOUBLE_EQ(zorp->avg_weight, 2.0);  // mean of tf {3, 1}
  EXPECT_DOUBLE_EQ(zorp->max_weight, 3.0);
  EXPECT_DOUBLE_EQ(zorp->stddev, 1.0);
}

}  // namespace
}  // namespace useful::represent
