#include "represent/builder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ir/search_engine.h"

namespace useful::represent {
namespace {

// Example 3.1 of the paper with raw tf weights (no normalization) so the
// triplet values can be checked against the worked numbers: term "zorp"
// appears in 3 of 5 documents with weights {3, 1, 2} -> (p, w) = (0.6, 2).
corpus::Collection Example31() {
  corpus::Collection c("ex31");
  c.Add({"d0", "zorp zorp zorp"});
  c.Add({"d1", "zorp quix"});
  c.Add({"d2", "blat blat"});
  c.Add({"d3", "zorp zorp blat blat"});
  c.Add({"d4", "mumble"});
  return c;
}

class BuilderTest : public ::testing::Test {
 protected:
  std::unique_ptr<ir::SearchEngine> MakeEngine(bool normalize) {
    ir::SearchEngineOptions opts;
    opts.normalization = normalize ? ir::Normalization::kCosine : ir::Normalization::kNone;
    auto engine =
        std::make_unique<ir::SearchEngine>("ex31", &analyzer_, opts);
    EXPECT_TRUE(engine->AddCollection(Example31()).ok());
    EXPECT_TRUE(engine->Finalize().ok());
    return engine;
  }
  text::Analyzer analyzer_;
};

TEST_F(BuilderTest, Example31Statistics) {
  auto engine = MakeEngine(/*normalize=*/false);
  auto rep = BuildRepresentative(*engine);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().num_docs(), 5u);
  EXPECT_EQ(rep.value().num_terms(), 4u);
  EXPECT_EQ(rep.value().kind(), RepresentativeKind::kQuadruplet);

  auto zorp = rep.value().Find("zorp");
  ASSERT_TRUE(zorp.has_value());
  EXPECT_DOUBLE_EQ(zorp->p, 0.6);
  EXPECT_DOUBLE_EQ(zorp->avg_weight, 2.0);  // mean of {3,1,2}
  EXPECT_NEAR(zorp->stddev, std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(zorp->max_weight, 3.0);
  EXPECT_EQ(zorp->doc_freq, 3u);

  auto quix = rep.value().Find("quix");
  ASSERT_TRUE(quix.has_value());
  EXPECT_DOUBLE_EQ(quix->p, 0.2);
  EXPECT_DOUBLE_EQ(quix->avg_weight, 1.0);
  EXPECT_DOUBLE_EQ(quix->stddev, 0.0);

  auto blat = rep.value().Find("blat");
  ASSERT_TRUE(blat.has_value());
  EXPECT_DOUBLE_EQ(blat->p, 0.4);
  EXPECT_DOUBLE_EQ(blat->avg_weight, 2.0);
}

TEST_F(BuilderTest, NormalizedWeightsBoundedByOne) {
  auto engine = MakeEngine(/*normalize=*/true);
  auto rep = BuildRepresentative(*engine);
  ASSERT_TRUE(rep.ok());
  for (const auto& [term, ts] : rep.value().stats()) {
    EXPECT_GT(ts.avg_weight, 0.0) << term;
    EXPECT_LE(ts.max_weight, 1.0 + 1e-12) << term;
    EXPECT_GE(ts.max_weight, ts.avg_weight - 1e-12) << term;
  }
}

TEST_F(BuilderTest, TripletLeavesMaxWeightZero) {
  auto engine = MakeEngine(true);
  auto rep = BuildRepresentative(*engine, RepresentativeKind::kTriplet);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().kind(), RepresentativeKind::kTriplet);
  for (const auto& [term, ts] : rep.value().stats()) {
    EXPECT_EQ(ts.max_weight, 0.0) << term;
  }
}

TEST_F(BuilderTest, MissingTermAbsent) {
  auto engine = MakeEngine(true);
  auto rep = BuildRepresentative(*engine);
  ASSERT_TRUE(rep.ok());
  EXPECT_FALSE(rep.value().Find("nonexistent").has_value());
}

TEST_F(BuilderTest, RejectsUnfinalizedEngine) {
  ir::SearchEngine engine("raw", &analyzer_);
  ASSERT_TRUE(engine.Add({"d", "word"}).ok());
  auto rep = BuildRepresentative(engine);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.status().code(), Status::Code::kFailedPrecondition);
}

TEST_F(BuilderTest, RejectsEmptyEngine) {
  ir::SearchEngine engine("empty", &analyzer_);
  ASSERT_TRUE(engine.Finalize().ok());
  auto rep = BuildRepresentative(engine);
  EXPECT_FALSE(rep.ok());
}

TEST(RepresentativeTest, PaperBytesAccounting) {
  Representative quad("e", 10, RepresentativeKind::kQuadruplet);
  Representative trip("e", 10, RepresentativeKind::kTriplet);
  for (int i = 0; i < 7; ++i) {
    quad.Put("t" + std::to_string(i), TermStats{});
    trip.Put("t" + std::to_string(i), TermStats{});
  }
  // Quadruplet: 4 (term) + 4*4 = 20 bytes/term, the paper's 20k figure.
  EXPECT_EQ(quad.PaperBytes(), 7u * 20u);
  // One-byte numbers: 4 + 4*1 = 8 bytes/term, the paper's 8k figure.
  EXPECT_EQ(quad.PaperBytes(1), 7u * 8u);
  // Triplet: 4 + 3*4 = 16 bytes/term.
  EXPECT_EQ(trip.PaperBytes(), 7u * 16u);
}

TEST(RepresentativeTest, PutOverwrites) {
  Representative rep("e", 5, RepresentativeKind::kQuadruplet);
  rep.Put("t", TermStats{.p = 0.1});
  rep.Put("t", TermStats{.p = 0.9});
  EXPECT_EQ(rep.num_terms(), 1u);
  EXPECT_DOUBLE_EQ(rep.Find("t")->p, 0.9);
}

}  // namespace
}  // namespace useful::represent
