#include "represent/quantized.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace useful::represent {
namespace {

Representative RandomRep(std::size_t terms, std::uint64_t seed,
                         RepresentativeKind kind) {
  Pcg32 rng(seed);
  Representative rep("rand", 1000, kind);
  for (std::size_t i = 0; i < terms; ++i) {
    TermStats ts;
    ts.doc_freq = 1 + rng.NextBounded(999);
    ts.p = ts.doc_freq / 1000.0;
    ts.avg_weight = rng.NextDouble() * 0.5 + 0.01;
    ts.stddev = rng.NextDouble() * 0.2;
    ts.max_weight = kind == RepresentativeKind::kQuadruplet
                        ? std::min(1.0, ts.avg_weight + 3.0 * ts.stddev)
                        : 0.0;
    rep.Put("term" + std::to_string(i), ts);
  }
  return rep;
}

TEST(QuantizedTest, RejectsEmptyRepresentative) {
  Representative rep("e", 10, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
}

TEST(QuantizedTest, PreservesStructure) {
  Representative rep = RandomRep(500, 1, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  const Representative& q = r.value().representative;
  EXPECT_EQ(q.engine_name(), rep.engine_name());
  EXPECT_EQ(q.num_docs(), rep.num_docs());
  EXPECT_EQ(q.num_terms(), rep.num_terms());
  EXPECT_EQ(q.kind(), rep.kind());
}

TEST(QuantizedTest, ProbabilityErrorBounded) {
  Representative rep = RandomRep(2000, 2, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  // p is quantized over [0,1]: error below one interval width.
  const double p_width = 1.0 / 256.0;
  for (const auto& [term, ts] : rep.stats()) {
    auto qs = r.value().representative.Find(term);
    ASSERT_TRUE(qs.has_value());
    EXPECT_NEAR(qs->p, ts.p, p_width) << term;
  }
}

TEST(QuantizedTest, WeightFieldsErrorBounded) {
  Representative rep = RandomRep(2000, 3, RepresentativeKind::kQuadruplet);
  double w_hi = 0.0, sd_hi = 0.0, mw_hi = 0.0;
  for (const auto& [term, ts] : rep.stats()) {
    w_hi = std::max(w_hi, ts.avg_weight);
    sd_hi = std::max(sd_hi, ts.stddev);
    mw_hi = std::max(mw_hi, ts.max_weight);
  }
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  for (const auto& [term, ts] : rep.stats()) {
    auto qs = r.value().representative.Find(term);
    ASSERT_TRUE(qs.has_value());
    EXPECT_NEAR(qs->avg_weight, ts.avg_weight, w_hi / 256.0);
    EXPECT_NEAR(qs->stddev, ts.stddev, sd_hi / 256.0);
    EXPECT_NEAR(qs->max_weight, ts.max_weight, mw_hi / 256.0);
  }
}

TEST(QuantizedTest, DocFreqReconstructedFromP) {
  Representative rep = RandomRep(500, 4, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  for (const auto& [term, ts] : rep.stats()) {
    auto qs = r.value().representative.Find(term);
    ASSERT_TRUE(qs.has_value());
    EXPECT_GE(qs->doc_freq, 1u);
    // round(p_approx * n) stays within the quantization error of df.
    EXPECT_NEAR(static_cast<double>(qs->doc_freq),
                static_cast<double>(ts.doc_freq), 1000.0 / 256.0 + 1.0);
  }
}

TEST(QuantizedTest, ZeroDocEngineKeepsDocFreqZero) {
  // A zero-doc engine must stay inside the NoDoc invariant df in [0, n]:
  // the old max(1, round(p*n)) floor minted a phantom document.
  Representative rep("empty-db", 0, RepresentativeKind::kQuadruplet);
  rep.Put("ghost", TermStats{0.0, 0.0, 0.0, 0.0, 0});
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  auto qs = r.value().representative.Find("ghost");
  ASSERT_TRUE(qs.has_value());
  EXPECT_EQ(qs->doc_freq, 0u);
}

TEST(QuantizedTest, ZeroProbTermNotFlooredToOne) {
  // p = 0 with original df = 0 (a term that never occurred): the floor at
  // 1 must not apply.
  Representative rep("db", 1000, RepresentativeKind::kQuadruplet);
  rep.Put("absent", TermStats{0.0, 0.0, 0.0, 0.0, 0});
  rep.Put("common", TermStats{0.5, 0.3, 0.1, 0.6, 500});
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  auto absent = r.value().representative.Find("absent");
  ASSERT_TRUE(absent.has_value());
  EXPECT_EQ(absent->doc_freq, 0u);
  auto common = r.value().representative.Find("common");
  ASSERT_TRUE(common.has_value());
  EXPECT_GE(common->doc_freq, 1u);
}

TEST(QuantizedTest, TinyPositiveProbKeepsFloorOfOne) {
  // A genuinely occurring term whose quantized p rounds to zero keeps the
  // floor at 1 — it exists in at least one document.
  Representative rep("db", 1000000, RepresentativeKind::kQuadruplet);
  rep.Put("rare", TermStats{1e-7, 0.4, 0.05, 0.5, 1});
  rep.Put("common", TermStats{0.9, 0.3, 0.1, 0.6, 900000});
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  auto rare = r.value().representative.Find("rare");
  ASSERT_TRUE(rare.has_value());
  EXPECT_EQ(rare->doc_freq, 1u);
}

TEST(QuantizedTest, DocFreqNeverExceedsNumDocs) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    Representative rep = RandomRep(300, seed, RepresentativeKind::kQuadruplet);
    auto r = QuantizeRepresentative(rep);
    ASSERT_TRUE(r.ok());
    for (const auto& [term, qs] : r.value().representative.stats()) {
      EXPECT_LE(qs.doc_freq, rep.num_docs()) << term;
    }
  }
}

TEST(QuantizedTest, DeterministicAcrossInsertionOrders) {
  // Codebooks are trained in sorted term order, so two representatives
  // with identical contents but different hash-map insertion histories
  // quantize to bit-identical stats.
  Representative fwd("db", 1000, RepresentativeKind::kQuadruplet);
  Representative rev("db", 1000, RepresentativeKind::kQuadruplet);
  Pcg32 rng(21);
  std::vector<std::pair<std::string, TermStats>> entries;
  for (int i = 0; i < 400; ++i) {
    TermStats ts;
    ts.doc_freq = 1 + rng.NextBounded(999);
    ts.p = ts.doc_freq / 1000.0;
    ts.avg_weight = rng.NextDouble() * 0.5 + 0.01;
    ts.stddev = rng.NextDouble() * 0.2;
    ts.max_weight = std::min(1.0, ts.avg_weight + 3.0 * ts.stddev);
    entries.emplace_back("term" + std::to_string(i), ts);
  }
  for (const auto& [t, ts] : entries) fwd.Put(t, ts);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    rev.Put(it->first, it->second);
  }
  auto qf = QuantizeRepresentative(fwd);
  auto qr = QuantizeRepresentative(rev);
  ASSERT_TRUE(qf.ok());
  ASSERT_TRUE(qr.ok());
  for (const auto& [term, a] : qf.value().representative.stats()) {
    auto b = qr.value().representative.Find(term);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a.p, b->p) << term;
    EXPECT_EQ(a.avg_weight, b->avg_weight) << term;
    EXPECT_EQ(a.stddev, b->stddev) << term;
    EXPECT_EQ(a.max_weight, b->max_weight) << term;
    EXPECT_EQ(a.doc_freq, b->doc_freq) << term;
  }
}

TEST(QuantizedTest, TripletModeSkipsMaxWeight) {
  Representative rep = RandomRep(100, 5, RepresentativeKind::kTriplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  for (const auto& [term, qs] : r.value().representative.stats()) {
    EXPECT_EQ(qs.max_weight, 0.0) << term;
  }
}

TEST(QuantizedTest, RequantizationNearlyLossless) {
  // Quantizing an already-quantized representative changes p not at all
  // (fixed [0,1] range: codebook values re-encode to the same intervals)
  // and weight fields by at most one interval width (their range is
  // re-derived from the observed maximum, which may shrink slightly).
  Representative rep = RandomRep(800, 6, RepresentativeKind::kQuadruplet);
  auto once = QuantizeRepresentative(rep);
  ASSERT_TRUE(once.ok());
  double w_hi = 0.0;
  for (const auto& [term, q1] : once.value().representative.stats()) {
    w_hi = std::max(w_hi, q1.avg_weight);
  }
  auto twice = QuantizeRepresentative(once.value().representative);
  ASSERT_TRUE(twice.ok());
  for (const auto& [term, q1] : once.value().representative.stats()) {
    auto q2 = twice.value().representative.Find(term);
    ASSERT_TRUE(q2.has_value());
    EXPECT_DOUBLE_EQ(q2->p, q1.p) << term;
    EXPECT_NEAR(q2->avg_weight, q1.avg_weight, w_hi / 256.0) << term;
  }
}

}  // namespace
}  // namespace useful::represent
