#include "represent/quantized.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace useful::represent {
namespace {

Representative RandomRep(std::size_t terms, std::uint64_t seed,
                         RepresentativeKind kind) {
  Pcg32 rng(seed);
  Representative rep("rand", 1000, kind);
  for (std::size_t i = 0; i < terms; ++i) {
    TermStats ts;
    ts.doc_freq = 1 + rng.NextBounded(999);
    ts.p = ts.doc_freq / 1000.0;
    ts.avg_weight = rng.NextDouble() * 0.5 + 0.01;
    ts.stddev = rng.NextDouble() * 0.2;
    ts.max_weight = kind == RepresentativeKind::kQuadruplet
                        ? std::min(1.0, ts.avg_weight + 3.0 * ts.stddev)
                        : 0.0;
    rep.Put("term" + std::to_string(i), ts);
  }
  return rep;
}

TEST(QuantizedTest, RejectsEmptyRepresentative) {
  Representative rep("e", 10, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kFailedPrecondition);
}

TEST(QuantizedTest, PreservesStructure) {
  Representative rep = RandomRep(500, 1, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  const Representative& q = r.value().representative;
  EXPECT_EQ(q.engine_name(), rep.engine_name());
  EXPECT_EQ(q.num_docs(), rep.num_docs());
  EXPECT_EQ(q.num_terms(), rep.num_terms());
  EXPECT_EQ(q.kind(), rep.kind());
}

TEST(QuantizedTest, ProbabilityErrorBounded) {
  Representative rep = RandomRep(2000, 2, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  // p is quantized over [0,1]: error below one interval width.
  const double p_width = 1.0 / 256.0;
  for (const auto& [term, ts] : rep.stats()) {
    auto qs = r.value().representative.Find(term);
    ASSERT_TRUE(qs.has_value());
    EXPECT_NEAR(qs->p, ts.p, p_width) << term;
  }
}

TEST(QuantizedTest, WeightFieldsErrorBounded) {
  Representative rep = RandomRep(2000, 3, RepresentativeKind::kQuadruplet);
  double w_hi = 0.0, sd_hi = 0.0, mw_hi = 0.0;
  for (const auto& [term, ts] : rep.stats()) {
    w_hi = std::max(w_hi, ts.avg_weight);
    sd_hi = std::max(sd_hi, ts.stddev);
    mw_hi = std::max(mw_hi, ts.max_weight);
  }
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  for (const auto& [term, ts] : rep.stats()) {
    auto qs = r.value().representative.Find(term);
    ASSERT_TRUE(qs.has_value());
    EXPECT_NEAR(qs->avg_weight, ts.avg_weight, w_hi / 256.0);
    EXPECT_NEAR(qs->stddev, ts.stddev, sd_hi / 256.0);
    EXPECT_NEAR(qs->max_weight, ts.max_weight, mw_hi / 256.0);
  }
}

TEST(QuantizedTest, DocFreqReconstructedFromP) {
  Representative rep = RandomRep(500, 4, RepresentativeKind::kQuadruplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  for (const auto& [term, ts] : rep.stats()) {
    auto qs = r.value().representative.Find(term);
    ASSERT_TRUE(qs.has_value());
    EXPECT_GE(qs->doc_freq, 1u);
    // round(p_approx * n) stays within the quantization error of df.
    EXPECT_NEAR(static_cast<double>(qs->doc_freq),
                static_cast<double>(ts.doc_freq), 1000.0 / 256.0 + 1.0);
  }
}

TEST(QuantizedTest, TripletModeSkipsMaxWeight) {
  Representative rep = RandomRep(100, 5, RepresentativeKind::kTriplet);
  auto r = QuantizeRepresentative(rep);
  ASSERT_TRUE(r.ok());
  for (const auto& [term, qs] : r.value().representative.stats()) {
    EXPECT_EQ(qs.max_weight, 0.0) << term;
  }
}

TEST(QuantizedTest, RequantizationNearlyLossless) {
  // Quantizing an already-quantized representative changes p not at all
  // (fixed [0,1] range: codebook values re-encode to the same intervals)
  // and weight fields by at most one interval width (their range is
  // re-derived from the observed maximum, which may shrink slightly).
  Representative rep = RandomRep(800, 6, RepresentativeKind::kQuadruplet);
  auto once = QuantizeRepresentative(rep);
  ASSERT_TRUE(once.ok());
  double w_hi = 0.0;
  for (const auto& [term, q1] : once.value().representative.stats()) {
    w_hi = std::max(w_hi, q1.avg_weight);
  }
  auto twice = QuantizeRepresentative(once.value().representative);
  ASSERT_TRUE(twice.ok());
  for (const auto& [term, q1] : once.value().representative.stats()) {
    auto q2 = twice.value().representative.Find(term);
    ASSERT_TRUE(q2.has_value());
    EXPECT_DOUBLE_EQ(q2->p, q1.p) << term;
    EXPECT_NEAR(q2->avg_weight, q1.avg_weight, w_hi / 256.0) << term;
  }
}

}  // namespace
}  // namespace useful::represent
