#include "testing/invariants.h"

#include <gtest/gtest.h>

#include <memory>

#include "estimate/registry.h"
#include "estimate/subrange_estimator.h"
#include "ir/query.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "testing/injected_bug.h"
#include "testing/oracle.h"
#include "testing/synthetic.h"
#include "text/analyzer.h"

namespace useful::testing {
namespace {

class InvariantsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_ = VaryForSeed(5);
    collection_ = MakeSyntheticCollection(options_, "synth");
    engine_ = std::make_unique<ir::SearchEngine>("synth", &analyzer_);
    ASSERT_TRUE(engine_->AddCollection(collection_).ok());
    ASSERT_TRUE(engine_->Finalize().ok());
    oracle_ = std::make_unique<ExactOracle>(analyzer_, collection_);
    rep_ = represent::BuildRepresentative(*engine_).value();

    SyntheticQueryOptions query_options;
    for (const std::string& text :
         MakeSyntheticQueryTexts(options_, query_options, 5)) {
      ir::Query q = ir::ParseQuery(analyzer_, text);
      if (!q.empty()) queries_.push_back(std::move(q));
    }
    ASSERT_FALSE(queries_.empty());
  }

  SyntheticCorpusOptions options_;
  corpus::Collection collection_;
  text::Analyzer analyzer_;
  std::unique_ptr<ir::SearchEngine> engine_;
  std::unique_ptr<ExactOracle> oracle_;
  represent::Representative rep_;
  std::vector<ir::Query> queries_;
};

TEST_F(InvariantsTest, EveryRegisteredEstimatorPasses) {
  for (const std::string& name : estimate::KnownEstimators()) {
    auto estimator = estimate::MakeEstimator(name).value();
    InvariantOptions options;
    options.nodoc_upper_bound = name != "disjoint";
    options.check_single_term_exact = name == "subrange";
    auto failure =
        CheckEstimator(*estimator, rep_, oracle_.get(), queries_, options);
    EXPECT_FALSE(failure.has_value())
        << name << ": " << failure->ToString();
  }
}

TEST_F(InvariantsTest, EngineAndBuilderAgreeWithOracle) {
  auto engine_failure = CheckEngineAgainstOracle(*engine_, *oracle_, queries_);
  EXPECT_FALSE(engine_failure.has_value()) << engine_failure->ToString();
  auto rep_failure = CheckRepresentativeAgainstOracle(rep_, *oracle_);
  EXPECT_FALSE(rep_failure.has_value()) << rep_failure->ToString();
}

TEST_F(InvariantsTest, InjectedOffByOneIsCaughtAndShrunkToOneTerm) {
  auto mutant = MakeOffByOneSubrangeEstimator();
  InvariantOptions options;
  options.check_single_term_exact = true;
  auto failure =
      CheckEstimator(*mutant, rep_, oracle_.get(), queries_, options);
  ASSERT_TRUE(failure.has_value());
  // The off-by-one must surface through a coefficient invariant, and the
  // shrinker must cut the repro down to a single term.
  EXPECT_TRUE(failure->property == "nodoc-range" ||
              failure->property == "single-term-nodoc-df" ||
              failure->property == "single-term-selection")
      << failure->ToString();
  EXPECT_EQ(failure->query_text.find(' '), std::string::npos)
      << "expected a one-term repro, got: " << failure->ToString();
}

// A wrapper whose batch path diverges from its scalar path by one ulp-level
// nudge: the bit-identity check must flag it.
class BatchDriftEstimator : public estimate::UsefulnessEstimator {
 public:
  std::string name() const override { return "batch-drift"; }
  estimate::UsefulnessEstimate Estimate(const represent::Representative& rep,
                                        const ir::Query& q,
                                        double threshold) const override {
    return inner_.Estimate(rep, q, threshold);
  }
  void EstimateBatch(const estimate::ResolvedQuery& rq,
                     std::span<const double> thresholds,
                     estimate::ExpansionWorkspace& ws,
                     std::span<estimate::UsefulnessEstimate> out) const override {
    estimate::UsefulnessEstimator::EstimateBatch(rq, thresholds, ws, out);
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      out[i].no_doc += 1e-13;  // the kind of drift a re-derived loop has
    }
  }

 private:
  estimate::SubrangeEstimator inner_;
};

TEST_F(InvariantsTest, BatchScalarDivergenceIsFlagged) {
  BatchDriftEstimator estimator;
  InvariantOptions options;
  auto failure =
      CheckEstimator(estimator, rep_, oracle_.get(), queries_, options);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->property, "batch-scalar-identity") << failure->ToString();
}

TEST(ShrinkQueryTest, ShrinksToMinimalFailingSubset) {
  text::Analyzer analyzer;
  ir::Query q = ir::ParseQuery(analyzer, "zq0x zq1x zq2x zq3x zq4x");
  ASSERT_EQ(q.size(), 5u);
  auto contains_bad = [](const ir::Query& candidate) {
    for (const ir::QueryTerm& qt : candidate.terms) {
      if (qt.term == "zq3x") return true;
    }
    return false;
  };
  ir::Query minimal = ShrinkQuery(q, contains_bad);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal.terms[0].term, "zq3x");
}

TEST(ShrinkQueryTest, KeepsQueryWhenNothingCanBeRemoved) {
  text::Analyzer analyzer;
  ir::Query q = ir::ParseQuery(analyzer, "zq0x zq1x");
  auto needs_both = [](const ir::Query& candidate) {
    return candidate.size() == 2;
  };
  EXPECT_EQ(ShrinkQuery(q, needs_both).size(), 2u);
}

}  // namespace
}  // namespace useful::testing
