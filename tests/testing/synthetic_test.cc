#include "testing/synthetic.h"

#include <gtest/gtest.h>

#include <set>

#include "text/analyzer.h"

namespace useful::testing {
namespace {

TEST(SyntheticTest, CollectionIsDeterministicAcrossCalls) {
  SyntheticCorpusOptions options;
  options.seed = 7;
  corpus::Collection a = MakeSyntheticCollection(options, "a");
  corpus::Collection b = MakeSyntheticCollection(options, "b");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.docs()[i].text, b.docs()[i].text) << "doc " << i;
  }
}

TEST(SyntheticTest, DifferentSeedsProduceDifferentCorpora) {
  SyntheticCorpusOptions a_options;
  a_options.seed = 1;
  SyntheticCorpusOptions b_options;
  b_options.seed = 2;
  corpus::Collection a = MakeSyntheticCollection(a_options, "a");
  corpus::Collection b = MakeSyntheticCollection(b_options, "b");
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i) {
    differ = a.docs()[i].text != b.docs()[i].text;
  }
  EXPECT_TRUE(differ);
}

TEST(SyntheticTest, VaryForSeedStaysInsideDocumentedRanges) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    SyntheticCorpusOptions options = VaryForSeed(seed);
    EXPECT_GE(options.num_docs, 1u);
    EXPECT_LE(options.num_docs, 121u);
    EXPECT_GE(options.vocab_size, 4u);
    EXPECT_GE(options.zipf_exponent, 0.6);
    EXPECT_LE(options.zipf_exponent, 1.6);
    EXPECT_EQ(options.seed, seed);
  }
}

TEST(SyntheticTest, VaryForSeedCoversSingleDocEngines) {
  bool saw_tiny = false;
  for (std::uint64_t seed = 0; seed < 500 && !saw_tiny; ++seed) {
    saw_tiny = VaryForSeed(seed).num_docs <= 2;
  }
  EXPECT_TRUE(saw_tiny) << "degenerate engine shapes must be generated";
}

// The whole harness depends on synthetic terms passing through the
// analyzer unchanged: a stemmed or stopworded term would silently break
// the oracle/representative term correspondence.
TEST(SyntheticTest, TermsSurviveTheAnalyzerVerbatim) {
  text::Analyzer analyzer;
  for (std::size_t rank = 0; rank < 150; ++rank) {
    std::string term = SyntheticTerm(rank);
    std::vector<std::string> tokens = analyzer.Analyze(term);
    ASSERT_EQ(tokens.size(), 1u) << term;
    EXPECT_EQ(tokens[0], term);
  }
}

TEST(SyntheticTest, QueryTextsAreDeterministicAndCoverAbsentTerms) {
  SyntheticCorpusOptions corpus = VaryForSeed(3);
  SyntheticQueryOptions options;
  options.count = 200;
  std::vector<std::string> a = MakeSyntheticQueryTexts(corpus, options, 3);
  std::vector<std::string> b = MakeSyntheticQueryTexts(corpus, options, 3);
  EXPECT_EQ(a, b);

  // The query vocabulary deliberately exceeds the corpus vocabulary so
  // estimators see terms with p = 0.
  std::set<std::string> beyond;
  for (const std::string& text : a) {
    for (std::size_t r = corpus.vocab_size; r < corpus.vocab_size + 2; ++r) {
      if (text.find(SyntheticTerm(r)) != std::string::npos) {
        beyond.insert(SyntheticTerm(r));
      }
    }
  }
  EXPECT_FALSE(beyond.empty());
}

}  // namespace
}  // namespace useful::testing
