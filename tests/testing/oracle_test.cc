#include "testing/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ir/query.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "testing/synthetic.h"
#include "text/analyzer.h"

namespace useful::testing {
namespace {

// Hand-checkable corpus: analyzer-proof single-letter-free terms.
corpus::Collection TinyCollection() {
  corpus::Collection c("tiny");
  c.Add({"d0", "zq0x zq1x"});        // weights 1/sqrt(2), 1/sqrt(2)
  c.Add({"d1", "zq0x zq0x"});        // weight 1 for zq0x
  c.Add({"d2", "zq1x zq1x zq2x"});   // zq1x: 2/sqrt(5), zq2x: 1/sqrt(5)
  return c;
}

TEST(ExactOracleTest, SimilaritiesMatchHandComputation) {
  text::Analyzer analyzer;
  ExactOracle oracle(analyzer, TinyCollection());
  ASSERT_EQ(oracle.num_docs(), 3u);

  ir::Query q = ir::ParseQuery(analyzer, "zq0x");
  ASSERT_EQ(q.size(), 1u);
  ASSERT_DOUBLE_EQ(q.terms[0].weight, 1.0);

  std::vector<double> sims = oracle.Similarities(q);
  ASSERT_EQ(sims.size(), 3u);
  EXPECT_DOUBLE_EQ(sims[0], 1.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(sims[1], 1.0);
  EXPECT_DOUBLE_EQ(sims[2], 0.0);
}

TEST(ExactOracleTest, TrueUsefulnessCountsStrictlyAbove) {
  text::Analyzer analyzer;
  ExactOracle oracle(analyzer, TinyCollection());
  ir::Query q = ir::ParseQuery(analyzer, "zq0x");

  ExactUsefulness at_zero = oracle.TrueUsefulness(q, 0.0);
  EXPECT_EQ(at_zero.no_doc, 2u);
  EXPECT_DOUBLE_EQ(at_zero.avg_sim, (1.0 / std::sqrt(2.0) + 1.0) / 2.0);

  // Strict >: a threshold equal to a similarity excludes that document.
  ExactUsefulness at_max = oracle.TrueUsefulness(q, 1.0);
  EXPECT_EQ(at_max.no_doc, 0u);
  EXPECT_DOUBLE_EQ(at_max.avg_sim, 0.0);
}

TEST(ExactOracleTest, SafeThresholdsBracketEveryCount) {
  text::Analyzer analyzer;
  ExactOracle oracle(analyzer, TinyCollection());
  ir::Query q = ir::ParseQuery(analyzer, "zq0x zq1x");

  std::vector<double> thresholds = oracle.SafeThresholds(q);
  ASSERT_FALSE(thresholds.empty());
  EXPECT_TRUE(std::is_sorted(thresholds.begin(), thresholds.end()));
  // The lowest safe threshold sees every matching document, the highest
  // sees none.
  EXPECT_EQ(oracle.TrueUsefulness(q, thresholds.front()).no_doc, 3u);
  EXPECT_EQ(oracle.TrueUsefulness(q, thresholds.back()).no_doc, 0u);
  for (double t : thresholds) EXPECT_GE(t, 0.0);
}

TEST(ExactOracleTest, RepresentativeMatchesHandStatistics) {
  text::Analyzer analyzer;
  ExactOracle oracle(analyzer, TinyCollection());
  represent::Representative rep = oracle.BuildRepresentative(
      "tiny", represent::RepresentativeKind::kQuadruplet);

  EXPECT_EQ(rep.num_docs(), 3u);
  auto ts = rep.Find("zq0x");
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->doc_freq, 2u);
  EXPECT_DOUBLE_EQ(ts->p, 2.0 / 3.0);
  double w0 = 1.0 / std::sqrt(2.0);
  EXPECT_DOUBLE_EQ(ts->avg_weight, (w0 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(ts->max_weight, 1.0);
  // Population stddev of {w0, 1}.
  double mean = (w0 + 1.0) / 2.0;
  double var = (w0 * w0 + 1.0) / 2.0 - mean * mean;
  EXPECT_NEAR(ts->stddev, std::sqrt(var), 1e-15);
}

TEST(ExactOracleTest, TripletRepresentativeOmitsMaxWeight) {
  text::Analyzer analyzer;
  ExactOracle oracle(analyzer, TinyCollection());
  represent::Representative rep = oracle.BuildRepresentative(
      "tiny", represent::RepresentativeKind::kTriplet);
  auto ts = rep.Find("zq0x");
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->max_weight, 0.0);
}

// The point of the oracle: it independently agrees with the inverted-index
// engine on a non-trivial corpus.
TEST(ExactOracleTest, AgreesWithSearchEngineOnSyntheticCorpus) {
  SyntheticCorpusOptions options = VaryForSeed(11);
  corpus::Collection collection = MakeSyntheticCollection(options, "synth");
  text::Analyzer analyzer;

  ir::SearchEngine engine("synth", &analyzer);
  ASSERT_TRUE(engine.AddCollection(collection).ok());
  ASSERT_TRUE(engine.Finalize().ok());
  ExactOracle oracle(analyzer, collection);
  ASSERT_EQ(engine.num_docs(), oracle.num_docs());

  SyntheticQueryOptions query_options;
  for (const std::string& text :
       MakeSyntheticQueryTexts(options, query_options, 11)) {
    ir::Query q = ir::ParseQuery(analyzer, text);
    if (q.empty()) continue;
    for (double t : oracle.SafeThresholds(q)) {
      EXPECT_EQ(engine.TrueUsefulness(q, t).no_doc,
                oracle.TrueUsefulness(q, t).no_doc)
          << "query \"" << text << "\" T=" << t;
    }
  }
}

}  // namespace
}  // namespace useful::testing
