#include "testing/protocol_fuzzer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/serialize.h"
#include "service/protocol.h"
#include "util/status.h"

namespace useful::testing {
namespace {

TEST(GenerateFuzzLineTest, DeterministicAndNewlineFree) {
  std::vector<std::string> dictionary = {"subrange", "zq0x"};
  for (std::size_t i = 0; i < 500; ++i) {
    std::string a = GenerateFuzzLine(9, i, dictionary);
    std::string b = GenerateFuzzLine(9, i, dictionary);
    EXPECT_EQ(a, b) << "iteration " << i;
    EXPECT_EQ(a.find('\n'), std::string::npos) << "iteration " << i;
  }
}

TEST(GenerateFuzzLineTest, CoversControlBytesAndValidCommands) {
  std::vector<std::string> dictionary = {"subrange"};
  bool saw_control = false, saw_route = false, saw_nul = false;
  for (std::size_t i = 0; i < 2000; ++i) {
    std::string line = GenerateFuzzLine(1, i, dictionary);
    for (unsigned char c : line) {
      if (c < 0x20 && c != '\t') saw_control = true;
      if (c == '\0') saw_nul = true;
    }
    if (line.rfind("ROUTE ", 0) == 0) saw_route = true;
  }
  EXPECT_TRUE(saw_control);
  EXPECT_TRUE(saw_nul);
  EXPECT_TRUE(saw_route);
}

TEST(GenerateFuzzLineTest, CoversObservabilityVerbs) {
  std::vector<std::string> dictionary = {"subrange"};
  bool saw_metrics = false, saw_slowlog_count = false;
  for (std::size_t i = 0; i < 4000; ++i) {
    std::string line = GenerateFuzzLine(7, i, dictionary);
    if (line.rfind("METRICS", 0) == 0) saw_metrics = true;
    if (line.rfind("SLOWLOG ", 0) == 0) saw_slowlog_count = true;
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_slowlog_count);
}

TEST(EscapeLineTest, EscapesNonPrintableBytes) {
  EXPECT_EQ(EscapeLine("abc"), "\"abc\"");
  EXPECT_EQ(EscapeLine(std::string_view("a\0b", 3)), "\"a\\x00b\"");
  EXPECT_EQ(EscapeLine("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(EscapeLine("\xff"), "\"\\xff\"");
}

TEST(ValidateReplyTest, AcceptsWellFormedOkAndErr) {
  service::Service::Reply ok;
  ok.status = Status::OK();
  ok.payload = {"sports 2 0.5"};
  EXPECT_FALSE(ValidateReply("ESTIMATE subrange 0.2 zq0x", ok).has_value());

  service::Service::Reply err;
  err.status = Status::InvalidArgument("bad threshold: x");
  EXPECT_FALSE(ValidateReply("ESTIMATE subrange x", err).has_value());
}

TEST(ValidateReplyTest, FlagsFramingBytesInPayload) {
  service::Service::Reply reply;
  reply.status = Status::OK();
  reply.payload = {"sports 2\n0.5"};
  auto reason = ValidateReply("STATS", reply);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("framing"), std::string::npos);
}

TEST(ValidateReplyTest, FlagsInternalErrors) {
  service::Service::Reply reply;
  reply.status = Status::Internal("boom");
  auto reason = ValidateReply("STATS", reply);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("internal"), std::string::npos);
}

TEST(ValidateReplyTest, FlagsSpuriousConnectionClose) {
  service::Service::Reply reply;
  reply.status = Status::OK();
  reply.close_connection = true;
  auto reason = ValidateReply("STATS", reply);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("non-QUIT"), std::string::npos);

  reply.shutdown_server = true;
  EXPECT_FALSE(ValidateReply("QUIT", reply).has_value());
}

TEST(ValidateReplyTest, ChecksMetricsExpositionLines) {
  service::Service::Reply reply;
  reply.status = Status::OK();
  reply.payload = {"# HELP useful_requests_total Total requests.",
                   "# TYPE useful_requests_total counter",
                   "useful_requests_total 42",
                   "useful_command_latency_seconds_bucket{le=\"0.1\"} 3",
                   "useful_engines 0.25"};
  EXPECT_FALSE(ValidateReply("METRICS", reply).has_value());

  reply.payload.push_back("useful_bogus not-a-number");
  auto reason = ValidateReply("METRICS", reply);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("metrics"), std::string::npos);
}

TEST(ValidateReplyTest, ChecksSlowlogLines) {
  service::Service::Reply reply;
  reply.status = Status::OK();
  reply.payload = {
      "total_us=140 seq=1 cache_hit=0 engines=2 estimator=subrange "
      "threshold=0.2 stages=parse:3,write:40 query=fox dog"};
  EXPECT_FALSE(ValidateReply("SLOWLOG", reply).has_value());
  EXPECT_FALSE(ValidateReply("SLOWLOG 5", reply).has_value());

  reply.payload = {"surprise line"};
  auto reason = ValidateReply("SLOWLOG", reply);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("slowlog"), std::string::npos);
}

TEST(ValidateReplyTest, FlagsMalformedSelectionLines) {
  service::Service::Reply reply;
  reply.status = Status::OK();
  reply.payload = {"sports 2"};  // missing the AvgSim column
  auto reason = ValidateReply("ESTIMATE subrange 0.2 zq0x", reply);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("selection"), std::string::npos);
}

TEST(ShrinkLineTest, DropsTokensThenBytes) {
  auto has_nul = [](const std::string& line) {
    return line.find('\0') != std::string::npos;
  };
  std::string line = "ROUTE subrange 0.2 zq";
  line += '\0';
  line += "x dog";
  std::string shrunk = ShrinkLine(line, has_nul);
  ASSERT_TRUE(has_nul(shrunk));
  EXPECT_EQ(shrunk.size(), 1u);
}

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("useful_fuzz_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    std::filesystem::create_directories(dir_);
    ir::SearchEngine engine("fuzzdb", &analyzer_);
    ASSERT_TRUE(engine.Add({"d0", "zq0x zq1x zq2x"}).ok());
    ASSERT_TRUE(engine.Add({"d1", "zq0x zq0x zq3x"}).ok());
    ASSERT_TRUE(engine.Finalize().ok());
    std::string path = (dir_ / "fuzzdb.rep").string();
    ASSERT_TRUE(represent::SaveRepresentative(
                    represent::BuildRepresentative(engine).value(), path)
                    .ok());
    service::ServiceOptions options;
    options.representative_paths = {path};
    auto service = service::Service::Create(&analyzer_, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(service).value();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  text::Analyzer analyzer_;
  std::filesystem::path dir_;
  std::unique_ptr<service::Service> service_;
};

TEST_F(ProtocolFuzzTest, BoundedRunIsCleanAgainstRealService) {
  FuzzProtocolOptions options;
  options.seed = 42;
  options.iterations = 600;
  options.dictionary = {"subrange", "basic", "zq0x", "zq1x"};
  auto failure = FuzzProtocol(*service_, options);
  EXPECT_FALSE(failure.has_value()) << failure->ToString();
}

}  // namespace
}  // namespace useful::testing
