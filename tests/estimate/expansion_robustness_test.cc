// The expansion knobs (probability floor, exponent resolution) exist to
// bound cost; they must not visibly move the estimates. The paper's
// robustness claim ("can still yield good result even when approximate
// statistical data are used") extends to our numerical approximations.
#include <gtest/gtest.h>

#include <cmath>

#include "estimate/subrange_estimator.h"
#include "util/random.h"

namespace useful::estimate {
namespace {

represent::Representative RandomRep(std::uint64_t seed) {
  Pcg32 rng(seed);
  represent::Representative rep("r", 500,
                                represent::RepresentativeKind::kQuadruplet);
  for (int i = 0; i < 12; ++i) {
    represent::TermStats ts;
    ts.doc_freq = 1 + rng.NextBounded(499);
    ts.p = ts.doc_freq / 500.0;
    ts.avg_weight = 0.05 + rng.NextDouble() * 0.3;
    ts.stddev = rng.NextDouble() * 0.1;
    ts.max_weight = std::min(1.0, ts.avg_weight + 3.2 * ts.stddev);
    rep.Put("t" + std::to_string(i), ts);
  }
  return rep;
}

ir::Query RandomQuery(Pcg32* rng) {
  ir::Query q;
  std::size_t len = 1 + rng->NextBounded(6);
  double norm = std::sqrt(static_cast<double>(len));
  for (std::size_t i = 0; i < len; ++i) {
    q.terms.push_back(
        ir::QueryTerm{"t" + std::to_string(rng->NextBounded(12)), 1.0 / norm});
  }
  return q;
}

class ExpansionRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpansionRobustness, AggressivePruningBarelyMovesEstimates) {
  represent::Representative rep = RandomRep(GetParam());
  Pcg32 rng(GetParam() ^ 0x123);

  SubrangeEstimator precise;  // defaults: floor 1e-12, resolution 1e-9

  // 1000x coarser than the defaults on both knobs. (Resolution around
  // 1e-4 starts visibly moving mass across thresholds where spikes
  // cluster — that is the knob's real trade-off, so the tight assertion
  // stops there.)
  SubrangeEstimatorOptions coarse_opts;
  coarse_opts.expand.prob_floor = 1e-9;
  coarse_opts.expand.exponent_resolution = 1e-6;
  SubrangeEstimator coarse(coarse_opts);

  for (int trial = 0; trial < 25; ++trial) {
    ir::Query q = RandomQuery(&rng);
    for (double t : {0.1, 0.2, 0.4}) {
      UsefulnessEstimate a = precise.Estimate(rep, q, t);
      UsefulnessEstimate b = coarse.Estimate(rep, q, t);
      // Absolute NoDoc agreement within a fraction of a document per 500.
      EXPECT_NEAR(a.no_doc, b.no_doc, 0.5 + 0.01 * a.no_doc) << "t=" << t;
      // AvgSim only matters when the estimate carries at least a
      // document's worth of mass — below that the coarse floor may prune
      // the whole (irrelevant) tail.
      if (a.no_doc >= 0.5) {
        EXPECT_NEAR(a.avg_sim, b.avg_sim, 0.02) << "t=" << t;
      }
    }
  }
}

TEST_P(ExpansionRobustness, PrunedMassIsSmall) {
  represent::Representative rep = RandomRep(GetParam() + 50);
  Pcg32 rng(GetParam() ^ 0x456);
  SubrangeEstimatorOptions opts;
  opts.expand.prob_floor = 1e-8;
  SubrangeEstimator est(opts);
  SubrangeEstimatorOptions exact_opts;
  exact_opts.expand.prob_floor = 0.0;  // no pruning at all
  SubrangeEstimator exact(exact_opts);
  for (int trial = 0; trial < 25; ++trial) {
    ir::Query q = RandomQuery(&rng);
    // NoDoc at T = 0 is n times the probability that a document matches
    // at least one query term — bounded by n, and pruning at 1e-8 may
    // only remove negligible mass relative to the unpruned expansion.
    UsefulnessEstimate pruned = est.Estimate(rep, q, 0.0);
    UsefulnessEstimate full = exact.Estimate(rep, q, 0.0);
    EXPECT_LE(pruned.no_doc, 500.0 + 1e-6);
    EXPECT_GE(pruned.no_doc, 0.0);
    // Thousands of sub-1e-8 spikes can be pruned; their total mass stays
    // far below a tenth of a document out of 500.
    EXPECT_NEAR(pruned.no_doc, full.no_doc, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionRobustness,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace useful::estimate
