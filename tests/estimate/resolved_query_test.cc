#include "estimate/resolved_query.h"

#include <gtest/gtest.h>

#include <memory>

#include "estimate/registry.h"
#include "ir/search_engine.h"
#include "represent/builder.h"

namespace useful::estimate {
namespace {

// A small but non-trivial engine: overlapping vocabulary, repeated terms,
// and enough documents that subrange spikes and adaptive tails are all
// exercised.
class ResolvedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<ir::SearchEngine>("db", &analyzer_);
    const char* docs[] = {
        "zorp zorp quix blat",     "zorp mumble mumble",
        "blat blat blat",          "quix zorp blat mumble",
        "mumble quix quix",        "zorp zorp zorp zorp blat",
        "blat mumble",             "quix quix quix",
    };
    int i = 0;
    for (const char* text : docs) {
      ASSERT_TRUE(engine_->Add({"d" + std::to_string(i++), text}).ok());
    }
    ASSERT_TRUE(engine_->Finalize().ok());
    auto rep = represent::BuildRepresentative(*engine_);
    ASSERT_TRUE(rep.ok());
    rep_ = std::make_unique<represent::Representative>(std::move(rep).value());
  }

  text::Analyzer analyzer_;
  std::unique_ptr<ir::SearchEngine> engine_;
  std::unique_ptr<represent::Representative> rep_;
};

TEST_F(ResolvedQueryTest, KeepsFoundTermsInQueryOrder) {
  ir::Query q = ir::ParseQuery(analyzer_, "zorp blat");
  ResolvedQuery rq(*rep_, q);
  ASSERT_EQ(rq.terms().size(), 2u);
  // Order follows the query's term order, and stats match a direct Find.
  for (std::size_t i = 0; i < q.terms.size(); ++i) {
    auto ts = rep_->Find(q.terms[i].term);
    ASSERT_TRUE(ts.has_value());
    EXPECT_EQ(rq.terms()[i].weight, q.terms[i].weight);
    EXPECT_EQ(rq.terms()[i].stats.p, ts->p);
    EXPECT_EQ(rq.terms()[i].stats.avg_weight, ts->avg_weight);
    EXPECT_EQ(rq.terms()[i].stats.doc_freq, ts->doc_freq);
  }
}

TEST_F(ResolvedQueryTest, DropsUnknownTerms) {
  ir::Query q = ir::ParseQuery(analyzer_, "zorp ghostword");
  ResolvedQuery rq(*rep_, q);
  EXPECT_EQ(rq.terms().size(), 1u);
}

TEST_F(ResolvedQueryTest, CarriesRepresentativeFacts) {
  ir::Query q = ir::ParseQuery(analyzer_, "zorp");
  ResolvedQuery rq(*rep_, q);
  EXPECT_EQ(rq.num_docs(), rep_->num_docs());
  EXPECT_EQ(rq.kind(), rep_->kind());
  EXPECT_EQ(&rq.representative(), rep_.get());
  EXPECT_EQ(&rq.query(), &q);
}

// The core contract of the batched pipeline: for every registered
// estimator, EstimateBatch over a threshold sweep is bit-identical to the
// scalar Estimate call at each threshold.
TEST_F(ResolvedQueryTest, BatchBitIdenticalToScalarForEveryEstimator) {
  const std::vector<double> thresholds = {0.0, 0.1, 0.2, 0.3,
                                          0.45, 0.6, 0.9};
  const char* query_texts[] = {"zorp", "zorp blat", "quix mumble zorp",
                               "blat blat mumble quix", "ghostword zorp"};
  std::vector<std::string> names = KnownEstimators();
  names.push_back("subrange-k3");  // pattern form
  ExpansionWorkspace ws;  // shared across estimators and queries on purpose
  for (const std::string& name : names) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    for (const char* text : query_texts) {
      ir::Query q = ir::ParseQuery(analyzer_, text);
      ResolvedQuery rq(*rep_, q);
      std::vector<UsefulnessEstimate> batch(thresholds.size());
      est.value()->EstimateBatch(rq, thresholds, ws,
                                 std::span<UsefulnessEstimate>(batch));
      for (std::size_t t = 0; t < thresholds.size(); ++t) {
        UsefulnessEstimate scalar =
            est.value()->Estimate(*rep_, q, thresholds[t]);
        EXPECT_EQ(batch[t].no_doc, scalar.no_doc)
            << name << " \"" << text << "\" T=" << thresholds[t];
        EXPECT_EQ(batch[t].avg_sim, scalar.avg_sim)
            << name << " \"" << text << "\" T=" << thresholds[t];
      }
    }
  }
}

TEST_F(ResolvedQueryTest, WorkspaceStateDoesNotLeakAcrossCalls) {
  // Run a wide query through the workspace, then a narrow one; the narrow
  // result must not see the wide query's factors or spike buffers.
  auto est = MakeEstimator("subrange");
  ASSERT_TRUE(est.ok());
  ExpansionWorkspace ws;
  const double threshold = 0.2;
  ir::Query wide = ir::ParseQuery(analyzer_, "zorp blat quix mumble");
  ir::Query narrow = ir::ParseQuery(analyzer_, "quix");
  ResolvedQuery rq_wide(*rep_, wide), rq_narrow(*rep_, narrow);
  UsefulnessEstimate out;
  est.value()->EstimateBatch(rq_wide, std::span<const double>(&threshold, 1),
                             ws, std::span<UsefulnessEstimate>(&out, 1));
  est.value()->EstimateBatch(rq_narrow, std::span<const double>(&threshold, 1),
                             ws, std::span<UsefulnessEstimate>(&out, 1));
  UsefulnessEstimate scalar = est.value()->Estimate(*rep_, narrow, threshold);
  EXPECT_EQ(out.no_doc, scalar.no_doc);
  EXPECT_EQ(out.avg_sim, scalar.avg_sim);
}

TEST_F(ResolvedQueryTest, DefaultBatchFallbackLoopsScalar) {
  // An estimator that does not override EstimateBatch gets the scalar loop
  // through the ResolvedQuery's back-pointers.
  class FixedEstimator : public UsefulnessEstimator {
   public:
    std::string name() const override { return "fixed"; }
    UsefulnessEstimate Estimate(const represent::Representative&,
                                const ir::Query& q,
                                double threshold) const override {
      return UsefulnessEstimate{static_cast<double>(q.size()), threshold};
    }
  };
  FixedEstimator fixed;
  ir::Query q = ir::ParseQuery(analyzer_, "zorp blat");
  ResolvedQuery rq(*rep_, q);
  const std::vector<double> thresholds = {0.1, 0.7};
  std::vector<UsefulnessEstimate> out(2);
  ExpansionWorkspace ws;
  fixed.EstimateBatch(rq, thresholds, ws, std::span<UsefulnessEstimate>(out));
  EXPECT_EQ(out[0].no_doc, 2.0);
  EXPECT_EQ(out[0].avg_sim, 0.1);
  EXPECT_EQ(out[1].avg_sim, 0.7);
}

}  // namespace
}  // namespace useful::estimate
