#include "estimate/gloss_estimators.h"

#include <gtest/gtest.h>

namespace useful::estimate {
namespace {

// Three query terms with document frequencies 50 > 30 > 10 in a database
// of 100 documents, all average weights 0.2, query weights 1.
represent::Representative NestedRep() {
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("a", represent::TermStats{0.5, 0.2, 0.0, 0.2, 50});
  rep.Put("b", represent::TermStats{0.3, 0.2, 0.0, 0.2, 30});
  rep.Put("c", represent::TermStats{0.1, 0.2, 0.0, 0.2, 10});
  return rep;
}

ir::Query Abc() {
  ir::Query q;
  q.terms = {{"a", 1.0}, {"b", 1.0}, {"c", 1.0}};
  return q;
}

TEST(HighCorrelationTest, LayeredCounts) {
  // Under high-correlation: 10 docs score 0.6, 20 docs score 0.4,
  // 20 docs score 0.2.
  HighCorrelationEstimator est;
  UsefulnessEstimate u = est.Estimate(NestedRep(), Abc(), 0.5);
  EXPECT_DOUBLE_EQ(u.no_doc, 10.0);
  EXPECT_NEAR(u.avg_sim, 0.6, 1e-12);

  u = est.Estimate(NestedRep(), Abc(), 0.3);
  EXPECT_DOUBLE_EQ(u.no_doc, 30.0);
  EXPECT_NEAR(u.avg_sim, (10 * 0.6 + 20 * 0.4) / 30.0, 1e-12);

  u = est.Estimate(NestedRep(), Abc(), 0.1);
  EXPECT_DOUBLE_EQ(u.no_doc, 50.0);
  EXPECT_NEAR(u.avg_sim, (10 * 0.6 + 20 * 0.4 + 20 * 0.2) / 50.0, 1e-12);
}

TEST(HighCorrelationTest, ThresholdIsStrict) {
  // Binary-exact weights (0.25) so the deepest layer's similarity is
  // exactly 0.75: it must not clear T = 0.75 (sim > T is strict).
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("a", represent::TermStats{0.5, 0.25, 0.0, 0.25, 50});
  rep.Put("b", represent::TermStats{0.3, 0.25, 0.0, 0.25, 30});
  rep.Put("c", represent::TermStats{0.1, 0.25, 0.0, 0.25, 10});
  HighCorrelationEstimator est;
  UsefulnessEstimate u = est.Estimate(rep, Abc(), 0.75);
  EXPECT_EQ(u.no_doc, 0.0);
  u = est.Estimate(rep, Abc(), 0.7);
  EXPECT_DOUBLE_EQ(u.no_doc, 10.0);
}

TEST(HighCorrelationTest, EqualDocFreqsCollapseLayers) {
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("a", represent::TermStats{0.2, 0.3, 0.0, 0.3, 20});
  rep.Put("b", represent::TermStats{0.2, 0.3, 0.0, 0.3, 20});
  ir::Query q;
  q.terms = {{"a", 1.0}, {"b", 1.0}};
  // All 20 docs contain both terms: similarity 0.6, no 1-term layer.
  UsefulnessEstimate u = HighCorrelationEstimator().Estimate(rep, q, 0.4);
  EXPECT_DOUBLE_EQ(u.no_doc, 20.0);
  EXPECT_NEAR(u.avg_sim, 0.6, 1e-12);
  u = HighCorrelationEstimator().Estimate(rep, q, 0.7);
  EXPECT_EQ(u.no_doc, 0.0);
}

TEST(HighCorrelationTest, SingleTerm) {
  HighCorrelationEstimator est;
  ir::Query q;
  q.terms = {{"a", 1.0}};
  UsefulnessEstimate u = est.Estimate(NestedRep(), q, 0.1);
  EXPECT_DOUBLE_EQ(u.no_doc, 50.0);
  EXPECT_NEAR(u.avg_sim, 0.2, 1e-12);
}

TEST(HighCorrelationTest, UnknownTermsIgnored) {
  HighCorrelationEstimator est;
  ir::Query q = Abc();
  q.terms.push_back({"ghost", 1.0});
  UsefulnessEstimate u = est.Estimate(NestedRep(), q, 0.5);
  EXPECT_DOUBLE_EQ(u.no_doc, 10.0);
}

TEST(HighCorrelationTest, EmptyQueryGivesZero) {
  UsefulnessEstimate u =
      HighCorrelationEstimator().Estimate(NestedRep(), ir::Query{}, 0.1);
  EXPECT_EQ(u.no_doc, 0.0);
  EXPECT_EQ(u.avg_sim, 0.0);
}

TEST(DisjointTest, SumsQualifyingTerms) {
  // Disjoint: 50 docs score 0.2, 30 docs score 0.2, 10 docs score 0.2.
  DisjointEstimator est;
  UsefulnessEstimate u = est.Estimate(NestedRep(), Abc(), 0.1);
  EXPECT_DOUBLE_EQ(u.no_doc, 90.0);
  EXPECT_NEAR(u.avg_sim, 0.2, 1e-12);
  // No document can clear 0.3 under disjointness.
  u = est.Estimate(NestedRep(), Abc(), 0.3);
  EXPECT_EQ(u.no_doc, 0.0);
}

TEST(DisjointTest, WeightedAvgSim) {
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("a", represent::TermStats{0.1, 0.6, 0.0, 0.6, 10});
  rep.Put("b", represent::TermStats{0.3, 0.4, 0.0, 0.4, 30});
  ir::Query q;
  q.terms = {{"a", 1.0}, {"b", 1.0}};
  UsefulnessEstimate u = DisjointEstimator().Estimate(rep, q, 0.3);
  EXPECT_DOUBLE_EQ(u.no_doc, 40.0);
  EXPECT_NEAR(u.avg_sim, (10 * 0.6 + 30 * 0.4) / 40.0, 1e-12);
}

TEST(DisjointTest, NeverExceedsHighCorrelationOnNestedData) {
  // On a high threshold the disjoint assumption can see no multi-term
  // documents, so its count is at most high-correlation's for T above the
  // single-term scores.
  DisjointEstimator disjoint;
  HighCorrelationEstimator high;
  UsefulnessEstimate d = disjoint.Estimate(NestedRep(), Abc(), 0.25);
  UsefulnessEstimate h = high.Estimate(NestedRep(), Abc(), 0.25);
  EXPECT_EQ(d.no_doc, 0.0);
  EXPECT_GT(h.no_doc, 0.0);
}

TEST(GlossTest, Names) {
  EXPECT_EQ(HighCorrelationEstimator().name(), "high-correlation");
  EXPECT_EQ(DisjointEstimator().name(), "disjoint");
}

TEST(RoundNoDocTest, PaperRounding) {
  EXPECT_EQ(RoundNoDoc(0.0), 0);
  EXPECT_EQ(RoundNoDoc(0.49), 0);
  EXPECT_EQ(RoundNoDoc(0.5), 1);
  EXPECT_EQ(RoundNoDoc(1.2), 1);
  EXPECT_EQ(RoundNoDoc(1.5), 2);
  EXPECT_EQ(RoundNoDoc(-0.3), 0);
}

}  // namespace
}  // namespace useful::estimate
