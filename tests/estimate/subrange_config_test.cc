#include "estimate/subrange_config.h"

#include <gtest/gtest.h>

namespace useful::estimate {
namespace {

double FractionSum(const SubrangeConfig& c) {
  double sum = 0.0;
  for (const Subrange& s : c.subranges()) sum += s.fraction;
  return sum;
}

TEST(SubrangeConfigTest, PaperSixLayout) {
  SubrangeConfig c = SubrangeConfig::PaperSix();
  EXPECT_TRUE(c.with_max_subrange());
  ASSERT_EQ(c.subranges().size(), 5u);
  // Medians from §4: 98, 93.1, 70, 37.5, 12.5 percentiles.
  EXPECT_DOUBLE_EQ(c.subranges()[0].median_percentile, 98.0);
  EXPECT_DOUBLE_EQ(c.subranges()[1].median_percentile, 93.1);
  EXPECT_DOUBLE_EQ(c.subranges()[2].median_percentile, 70.0);
  EXPECT_DOUBLE_EQ(c.subranges()[3].median_percentile, 37.5);
  EXPECT_DOUBLE_EQ(c.subranges()[4].median_percentile, 12.5);
  EXPECT_NEAR(FractionSum(c), 1.0, 1e-12);
}

TEST(SubrangeConfigTest, FourEqualLayout) {
  SubrangeConfig c = SubrangeConfig::FourEqual();
  EXPECT_FALSE(c.with_max_subrange());
  ASSERT_EQ(c.subranges().size(), 4u);
  // §3.1: medians at 87.5, 62.5, 37.5, 12.5; 25% each.
  EXPECT_DOUBLE_EQ(c.subranges()[0].median_percentile, 87.5);
  EXPECT_DOUBLE_EQ(c.subranges()[3].median_percentile, 12.5);
  for (const Subrange& s : c.subranges()) {
    EXPECT_DOUBLE_EQ(s.fraction, 0.25);
  }
}

TEST(SubrangeConfigTest, UniformLayout) {
  auto r = SubrangeConfig::Uniform(5, true);
  ASSERT_TRUE(r.ok());
  const SubrangeConfig& c = r.value();
  EXPECT_TRUE(c.with_max_subrange());
  ASSERT_EQ(c.subranges().size(), 5u);
  EXPECT_DOUBLE_EQ(c.subranges()[0].median_percentile, 90.0);
  EXPECT_DOUBLE_EQ(c.subranges()[4].median_percentile, 10.0);
  EXPECT_NEAR(FractionSum(c), 1.0, 1e-12);
}

TEST(SubrangeConfigTest, UniformRejectsBadK) {
  EXPECT_FALSE(SubrangeConfig::Uniform(0, false).ok());
  EXPECT_FALSE(SubrangeConfig::Uniform(65, false).ok());
  EXPECT_TRUE(SubrangeConfig::Uniform(1, false).ok());
  EXPECT_TRUE(SubrangeConfig::Uniform(64, false).ok());
}

TEST(SubrangeConfigTest, CustomAcceptsValid) {
  auto r = SubrangeConfig::Custom({{90.0, 0.5}, {40.0, 0.5}}, false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().subranges().size(), 2u);
}

TEST(SubrangeConfigTest, CustomRejectsEmpty) {
  EXPECT_FALSE(SubrangeConfig::Custom({}, false).ok());
}

TEST(SubrangeConfigTest, CustomRejectsNonUnitSum) {
  EXPECT_FALSE(SubrangeConfig::Custom({{90.0, 0.5}, {40.0, 0.4}}, false).ok());
}

TEST(SubrangeConfigTest, CustomRejectsNonDecreasingPercentiles) {
  EXPECT_FALSE(SubrangeConfig::Custom({{40.0, 0.5}, {90.0, 0.5}}, false).ok());
  EXPECT_FALSE(SubrangeConfig::Custom({{40.0, 0.5}, {40.0, 0.5}}, false).ok());
}

TEST(SubrangeConfigTest, CustomRejectsBoundaryPercentiles) {
  EXPECT_FALSE(SubrangeConfig::Custom({{100.0, 1.0}}, false).ok());
  EXPECT_FALSE(SubrangeConfig::Custom({{0.0, 1.0}}, false).ok());
}

TEST(SubrangeConfigTest, CustomRejectsNonPositiveFraction) {
  EXPECT_FALSE(
      SubrangeConfig::Custom({{90.0, 1.0}, {40.0, 0.0}}, false).ok());
  EXPECT_FALSE(
      SubrangeConfig::Custom({{90.0, 1.5}, {40.0, -0.5}}, false).ok());
}

TEST(SubrangeConfigTest, ToStringMentionsMax) {
  EXPECT_NE(SubrangeConfig::PaperSix().ToString().find("[max]"),
            std::string::npos);
  EXPECT_EQ(SubrangeConfig::FourEqual().ToString().find("[max]"),
            std::string::npos);
}

}  // namespace
}  // namespace useful::estimate
