#include "estimate/subrange_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace useful::estimate {
namespace {

ir::Query SingleTermQuery(const std::string& term) {
  ir::Query q;
  q.terms.push_back(ir::QueryTerm{term, 1.0});
  return q;
}

TEST(SubrangeEstimatorTest, Example33Polynomial) {
  // Paper Example 3.3: w = 2.8, sigma = 1.3, p = 0.32, query weight u = 2,
  // four equal subranges -> 0.08 X^8.59 + 0.08 X^6.4268 + 0.08 X^4.7732 +
  // 0.08 X^2.61 + 0.68.
  SubrangeEstimatorOptions opts;
  opts.config = SubrangeConfig::FourEqual();
  SubrangeEstimator est(opts);

  represent::TermStats ts;
  ts.p = 0.32;
  ts.avg_weight = 2.8;
  ts.stddev = 1.3;
  ts.max_weight = 100.0;  // no clamping in this example
  ts.doc_freq = 32;

  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 2.0, 100, represent::RepresentativeKind::kQuadruplet);
  ASSERT_EQ(poly.spikes.size(), 4u);
  const double expected_exponents[] = {8.59, 6.4268, 4.7732, 2.61};
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(poly.spikes[i].exponent, expected_exponents[i], 0.01) << i;
    EXPECT_NEAR(poly.spikes[i].prob, 0.08, 1e-12) << i;
  }
  EXPECT_NEAR(poly.ZeroProb(), 0.68, 1e-12);
}

TEST(SubrangeEstimatorTest, MaxSubrangeGetsOneOverN) {
  SubrangeEstimator est;  // PaperSix: with max subrange
  represent::TermStats ts;
  ts.p = 0.5;
  ts.avg_weight = 0.2;
  ts.stddev = 0.05;
  ts.max_weight = 0.8;
  ts.doc_freq = 50;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kQuadruplet);
  ASSERT_FALSE(poly.spikes.empty());
  // Highest spike: exponent u * mw with probability 1/n.
  EXPECT_DOUBLE_EQ(poly.spikes[0].exponent, 0.8);
  EXPECT_DOUBLE_EQ(poly.spikes[0].prob, 0.01);
}

TEST(SubrangeEstimatorTest, ProbabilityMassConserved) {
  SubrangeEstimator est;
  represent::TermStats ts;
  ts.p = 0.37;
  ts.avg_weight = 0.3;
  ts.stddev = 0.1;
  ts.max_weight = 0.9;
  ts.doc_freq = 37;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kQuadruplet);
  double total = 0.0;
  for (const Spike& s : poly.spikes) total += s.prob;
  EXPECT_NEAR(total, ts.p, 1e-12);
}

TEST(SubrangeEstimatorTest, SmallDfCascadesMaxCarveOut) {
  // df = 2 over n = 100: the top fraction 4% of p = 0.02*0.04 is far below
  // 1/n, so the carve-out must cascade without losing mass or creating
  // negative probabilities.
  SubrangeEstimator est;
  represent::TermStats ts;
  ts.p = 0.02;
  ts.avg_weight = 0.3;
  ts.stddev = 0.1;
  ts.max_weight = 0.5;
  ts.doc_freq = 2;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kQuadruplet);
  double total = 0.0;
  for (const Spike& s : poly.spikes) {
    EXPECT_GE(s.prob, 0.0);
    total += s.prob;
  }
  EXPECT_NEAR(total, ts.p, 1e-12);
}

TEST(SubrangeEstimatorTest, DfOneYieldsOnlyMaxSpike) {
  SubrangeEstimator est;
  represent::TermStats ts;
  ts.p = 0.01;
  ts.avg_weight = 0.4;
  ts.stddev = 0.0;
  ts.max_weight = 0.4;
  ts.doc_freq = 1;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kQuadruplet);
  ASSERT_EQ(poly.spikes.size(), 1u);
  EXPECT_DOUBLE_EQ(poly.spikes[0].exponent, 0.4);
  EXPECT_DOUBLE_EQ(poly.spikes[0].prob, 0.01);
}

TEST(SubrangeEstimatorTest, MediansClampedToMaxWeight) {
  SubrangeEstimator est;
  represent::TermStats ts;
  ts.p = 0.5;
  ts.avg_weight = 0.5;
  ts.stddev = 0.4;  // w + 2.05*sigma would exceed mw
  ts.max_weight = 0.6;
  ts.doc_freq = 50;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kQuadruplet);
  for (const Spike& s : poly.spikes) {
    EXPECT_LE(s.exponent, 0.6 + 1e-12);
  }
}

TEST(SubrangeEstimatorTest, TripletEstimatesMaxAt999Percentile) {
  SubrangeEstimator est;
  represent::TermStats ts;
  ts.p = 0.5;
  ts.avg_weight = 0.3;
  ts.stddev = 0.1;
  ts.max_weight = 0.0;  // triplet: not stored
  ts.doc_freq = 50;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kTriplet);
  ASSERT_FALSE(poly.spikes.empty());
  // 99.9 percentile of N(0.3, 0.1^2) = 0.3 + 3.0902 * 0.1.
  EXPECT_NEAR(poly.spikes[0].exponent, 0.3 + 3.0902 * 0.1, 1e-3);
}

TEST(SubrangeEstimatorTest, ZeroSigmaDegeneratesToAverageWeight) {
  SubrangeEstimatorOptions opts;
  opts.config = SubrangeConfig::FourEqual();
  SubrangeEstimator est(opts);
  represent::TermStats ts;
  ts.p = 0.4;
  ts.avg_weight = 0.25;
  ts.stddev = 0.0;
  ts.max_weight = 0.25;
  ts.doc_freq = 40;
  TermPolynomial poly = est.BuildTermPolynomial(
      ts, 1.0, 100, represent::RepresentativeKind::kQuadruplet);
  for (const Spike& s : poly.spikes) {
    EXPECT_DOUBLE_EQ(s.exponent, 0.25);
  }
}

TEST(SubrangeEstimatorTest, MissingTermsYieldZeroEstimate) {
  SubrangeEstimator est;
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  UsefulnessEstimate u = est.Estimate(rep, SingleTermQuery("ghost"), 0.1);
  EXPECT_EQ(u.no_doc, 0.0);
  EXPECT_EQ(u.avg_sim, 0.0);
}

TEST(SubrangeEstimatorTest, EstimateBoundedByCollectionSize) {
  Pcg32 rng(10);
  SubrangeEstimator est;
  represent::Representative rep("e", 50,
                                represent::RepresentativeKind::kQuadruplet);
  ir::Query q;
  for (int i = 0; i < 4; ++i) {
    represent::TermStats ts;
    ts.doc_freq = 1 + rng.NextBounded(50);
    ts.p = ts.doc_freq / 50.0;
    ts.avg_weight = rng.NextDouble() * 0.4 + 0.05;
    ts.stddev = rng.NextDouble() * 0.1;
    ts.max_weight = std::min(1.0, ts.avg_weight + 3 * ts.stddev);
    std::string term = "t" + std::to_string(i);
    rep.Put(term, ts);
    q.terms.push_back(ir::QueryTerm{term, 0.5});
  }
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    UsefulnessEstimate u = est.Estimate(rep, q, t);
    EXPECT_GE(u.no_doc, 0.0);
    EXPECT_LE(u.no_doc, 50.0 + 1e-9);
  }
}

// §3.1's headline guarantee: with the max-weight subrange stored, a
// single-term query selects exactly the engines whose maximum normalized
// weight exceeds the threshold.
class SingleTermGuarantee : public ::testing::TestWithParam<double> {};

TEST_P(SingleTermGuarantee, SelectsExactlyEnginesAboveThreshold) {
  const double mws[] = {0.9, 0.7, 0.5, 0.3, 0.1};
  const double threshold = GetParam();
  SubrangeEstimator est;  // PaperSix
  for (int i = 0; i < 5; ++i) {
    represent::Representative rep(
        "engine" + std::to_string(i), 200,
        represent::RepresentativeKind::kQuadruplet);
    represent::TermStats ts;
    ts.doc_freq = 40;
    ts.p = 0.2;
    ts.avg_weight = mws[i] / 3.0;
    ts.stddev = mws[i] / 10.0;
    ts.max_weight = mws[i];
    rep.Put("term", ts);
    UsefulnessEstimate u = est.Estimate(rep, SingleTermQuery("term"), threshold);
    if (mws[i] > threshold) {
      EXPECT_GE(RoundNoDoc(u.no_doc), 1) << "engine " << i;
    } else {
      EXPECT_EQ(RoundNoDoc(u.no_doc), 0) << "engine " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThresholdsBetweenMaxWeights, SingleTermGuarantee,
                         ::testing::Values(0.95, 0.8, 0.6, 0.4, 0.2, 0.05));

TEST(SubrangeEstimatorTest, NameReflectsConfig) {
  EXPECT_NE(SubrangeEstimator().name().find("subrange"), std::string::npos);
  EXPECT_NE(SubrangeEstimator().name().find("[max]"), std::string::npos);
}

}  // namespace
}  // namespace useful::estimate
