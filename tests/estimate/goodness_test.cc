#include "estimate/goodness.h"

#include <gtest/gtest.h>

#include "estimate/basic_estimator.h"
#include "estimate/gloss_estimators.h"

namespace useful::estimate {
namespace {

TEST(GoodnessTest, ProductOfPair) {
  UsefulnessEstimate est{4.0, 0.25};
  EXPECT_DOUBLE_EQ(GoodnessOf(est), 1.0);
  ir::Usefulness truth{8, 0.5};
  EXPECT_DOUBLE_EQ(GoodnessOf(truth), 4.0);
}

TEST(GoodnessTest, ZeroWhenNothingAboveThreshold) {
  EXPECT_EQ(GoodnessOf(UsefulnessEstimate{0.0, 0.0}), 0.0);
  EXPECT_EQ(GoodnessOf(ir::Usefulness{0, 0.0}), 0.0);
}

TEST(GoodnessTest, Example32Goodness) {
  // From the paper's Example 3.2: est_NoDoc(3) = 1.2, est_AvgSim(3) = 4.2;
  // the implied similarity sum is 5*(0.048*5 + 0.192*4) = 5.04.
  represent::Representative rep("ex31", 5,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("t1", represent::TermStats{0.6, 2.0, 0.0, 2.0, 3});
  rep.Put("t2", represent::TermStats{0.2, 1.0, 0.0, 1.0, 1});
  rep.Put("t3", represent::TermStats{0.4, 2.0, 0.0, 2.0, 2});
  ir::Query q;
  q.terms = {{"t1", 1.0}, {"t2", 1.0}, {"t3", 1.0}};
  BasicEstimator basic;
  EXPECT_NEAR(EstimateGoodness(basic, rep, q, 3.0), 5.04, 1e-9);
}

TEST(GoodnessTest, HighCorrelationSumOnNestedTerms) {
  // df 50 > 30 > 10, weights 0.2 each: layers contribute
  // 10*0.6 + 20*0.4 + 20*0.2 = 18 at T = 0.1.
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("a", represent::TermStats{0.5, 0.2, 0.0, 0.2, 50});
  rep.Put("b", represent::TermStats{0.3, 0.2, 0.0, 0.2, 30});
  rep.Put("c", represent::TermStats{0.1, 0.2, 0.0, 0.2, 10});
  ir::Query q;
  q.terms = {{"a", 1.0}, {"b", 1.0}, {"c", 1.0}};
  HighCorrelationEstimator high;
  EXPECT_NEAR(EstimateGoodness(high, rep, q, 0.1), 18.0, 1e-9);
  DisjointEstimator disjoint;
  // Disjoint: 90 docs at 0.2 each = 18 as well at this low threshold.
  EXPECT_NEAR(EstimateGoodness(disjoint, rep, q, 0.1), 18.0, 1e-9);
  // At T = 0.3 they split: disjoint sees nothing, high-corr sees the two
  // deeper layers (10*0.6 + 20*0.4 = 14).
  EXPECT_NEAR(EstimateGoodness(high, rep, q, 0.3), 14.0, 1e-9);
  EXPECT_EQ(EstimateGoodness(disjoint, rep, q, 0.3), 0.0);
}

}  // namespace
}  // namespace useful::estimate
