#include "estimate/adaptive_estimator.h"

#include <gtest/gtest.h>

#include "estimate/basic_estimator.h"

namespace useful::estimate {
namespace {

represent::Representative OneTermRep(double p, double w, double sigma,
                                     std::size_t n) {
  represent::Representative rep("e", n,
                                represent::RepresentativeKind::kQuadruplet);
  represent::TermStats ts;
  ts.p = p;
  ts.avg_weight = w;
  ts.stddev = sigma;
  ts.max_weight = w + 3 * sigma;
  ts.doc_freq = static_cast<std::uint32_t>(p * static_cast<double>(n));
  rep.Put("t", ts);
  return rep;
}

ir::Query OneTermQuery(double u = 1.0) {
  ir::Query q;
  q.terms = {{"t", u}};
  return q;
}

TEST(AdaptiveEstimatorTest, ZeroThresholdMatchesBasic) {
  auto rep = OneTermRep(0.4, 0.3, 0.1, 100);
  AdaptiveEstimator adaptive;
  BasicEstimator basic;
  UsefulnessEstimate a = adaptive.Estimate(rep, OneTermQuery(), 0.0);
  UsefulnessEstimate b = basic.Estimate(rep, OneTermQuery(), 0.0);
  EXPECT_NEAR(a.no_doc, b.no_doc, 1e-9);
  EXPECT_NEAR(a.avg_sim, b.avg_sim, 1e-9);
}

TEST(AdaptiveEstimatorTest, ZeroSigmaMatchesBasicAtAnyThreshold) {
  auto rep = OneTermRep(0.4, 0.3, 0.0, 100);
  AdaptiveEstimator adaptive;
  BasicEstimator basic;
  for (double t : {0.1, 0.2, 0.5}) {
    UsefulnessEstimate a = adaptive.Estimate(rep, OneTermQuery(), t);
    UsefulnessEstimate b = basic.Estimate(rep, OneTermQuery(), t);
    EXPECT_NEAR(a.no_doc, b.no_doc, 1e-9) << t;
  }
}

TEST(AdaptiveEstimatorTest, HighThresholdSeesUpperTail) {
  // Basic: spike at w = 0.3 < T = 0.5 -> estimates zero. Adaptive shifts
  // to the tail above the cutoff and predicts a small positive count —
  // exactly the behaviour that made the VLDB'98 method better than basic.
  auto rep = OneTermRep(0.4, 0.3, 0.15, 1000);
  AdaptiveEstimator adaptive;
  BasicEstimator basic;
  UsefulnessEstimate b = basic.Estimate(rep, OneTermQuery(), 0.5);
  EXPECT_EQ(b.no_doc, 0.0);
  UsefulnessEstimate a = adaptive.Estimate(rep, OneTermQuery(), 0.5);
  EXPECT_GT(a.no_doc, 0.0);
  EXPECT_LT(a.no_doc, 0.4 * 1000);  // only a tail fraction
  EXPECT_GT(a.avg_sim, 0.5);        // conditional mean clears the cutoff
}

TEST(AdaptiveEstimatorTest, AdjustedCountDecreasesWithThreshold) {
  auto rep = OneTermRep(0.5, 0.3, 0.1, 500);
  AdaptiveEstimator adaptive;
  double prev = 501.0;
  for (double t = 0.0; t <= 0.9; t += 0.05) {
    UsefulnessEstimate u = adaptive.Estimate(rep, OneTermQuery(), t);
    EXPECT_LE(u.no_doc, prev + 1e-9) << t;
    prev = u.no_doc;
  }
}

TEST(AdaptiveEstimatorTest, MultiTermSharesThreshold) {
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  for (const char* term : {"a", "b"}) {
    represent::TermStats ts;
    ts.p = 0.3;
    ts.avg_weight = 0.2;
    ts.stddev = 0.08;
    ts.max_weight = 0.5;
    ts.doc_freq = 30;
    rep.Put(term, ts);
  }
  ir::Query q;
  q.terms = {{"a", 0.7}, {"b", 0.7}};
  AdaptiveEstimator adaptive;
  UsefulnessEstimate u = adaptive.Estimate(rep, q, 0.3);
  EXPECT_GE(u.no_doc, 0.0);
  EXPECT_LE(u.no_doc, 100.0);
}

TEST(AdaptiveEstimatorTest, MissingTermsIgnored) {
  auto rep = OneTermRep(0.4, 0.3, 0.1, 100);
  ir::Query q;
  q.terms = {{"ghost", 1.0}};
  UsefulnessEstimate u = AdaptiveEstimator().Estimate(rep, q, 0.1);
  EXPECT_EQ(u.no_doc, 0.0);
}

TEST(AdaptiveEstimatorTest, Name) {
  EXPECT_EQ(AdaptiveEstimator().name(), "adaptive-vldb98");
}

}  // namespace
}  // namespace useful::estimate
