#include "estimate/basic_estimator.h"

#include <gtest/gtest.h>

namespace useful::estimate {
namespace {

// The representative of Example 3.1: five documents, three terms.
represent::Representative Example31Rep() {
  represent::Representative rep("ex31", 5,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("t1", represent::TermStats{0.6, 2.0, 0.816, 3.0, 3});
  rep.Put("t2", represent::TermStats{0.2, 1.0, 0.0, 1.0, 1});
  rep.Put("t3", represent::TermStats{0.4, 2.0, 0.0, 2.0, 2});
  return rep;
}

ir::Query UnitQuery() {
  ir::Query q;
  q.terms = {{"t1", 1.0}, {"t2", 1.0}, {"t3", 1.0}};
  return q;
}

TEST(BasicEstimatorTest, Example32NoDoc) {
  BasicEstimator est;
  UsefulnessEstimate u = est.Estimate(Example31Rep(), UnitQuery(), 3.0);
  // est_NoDoc(3, q, D) = 5 * (0.048 + 0.192) = 1.2.
  EXPECT_NEAR(u.no_doc, 1.2, 1e-9);
  // est_AvgSim(3, q, D) = 4.2.
  EXPECT_NEAR(u.avg_sim, 4.2, 1e-9);
}

TEST(BasicEstimatorTest, Example32OtherThresholds) {
  BasicEstimator est;
  // Above T = 1: mass 0.048+0.192+0.104+0.416 = 0.76 -> 3.8 docs.
  UsefulnessEstimate u = est.Estimate(Example31Rep(), UnitQuery(), 1.0);
  EXPECT_NEAR(u.no_doc, 3.8, 1e-9);
  // Above T = 0: adds the X^1 spike: 0.808 -> 4.04 docs.
  u = est.Estimate(Example31Rep(), UnitQuery(), 0.0);
  EXPECT_NEAR(u.no_doc, 4.04, 1e-9);
}

TEST(BasicEstimatorTest, ThresholdAboveMaxGivesZero) {
  BasicEstimator est;
  UsefulnessEstimate u = est.Estimate(Example31Rep(), UnitQuery(), 5.0);
  EXPECT_EQ(u.no_doc, 0.0);
  EXPECT_EQ(u.avg_sim, 0.0);
}

TEST(BasicEstimatorTest, IgnoresUnknownQueryTerms) {
  BasicEstimator est;
  ir::Query q = UnitQuery();
  q.terms.push_back({"ghost", 1.0});
  UsefulnessEstimate u = est.Estimate(Example31Rep(), q, 3.0);
  EXPECT_NEAR(u.no_doc, 1.2, 1e-9);
}

TEST(BasicEstimatorTest, QueryWeightsScaleExponents) {
  BasicEstimator est;
  ir::Query q;
  q.terms = {{"t1", 2.0}};  // similarity spike at 2*2 = 4 with prob 0.6
  UsefulnessEstimate u = est.Estimate(Example31Rep(), q, 3.9);
  EXPECT_NEAR(u.no_doc, 3.0, 1e-9);  // 5 * 0.6
  EXPECT_NEAR(u.avg_sim, 4.0, 1e-9);
  u = est.Estimate(Example31Rep(), q, 4.0);  // strict threshold
  EXPECT_EQ(u.no_doc, 0.0);
}

TEST(BasicEstimatorTest, EmptyQuery) {
  BasicEstimator est;
  UsefulnessEstimate u = est.Estimate(Example31Rep(), ir::Query{}, 0.1);
  EXPECT_EQ(u.no_doc, 0.0);
}

TEST(BasicEstimatorTest, Name) {
  EXPECT_EQ(BasicEstimator().name(), "basic");
}

}  // namespace
}  // namespace useful::estimate
