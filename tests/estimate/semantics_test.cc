// Extended query semantics — per-term weights, negated terms, and
// min-should-match — proven equivalent across every execution path:
// scalar vs EstimateBatch, scalar vs AVX2 expansion kernel, and the
// min-should-match DP vs brute-force outcome enumeration. The flat-query
// identity (all weights 1, no negation, no MSM) is the anchor: annotated
// parsing and estimation must be bit-identical to the original flat path.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "estimate/generating_function.h"
#include "estimate/registry.h"
#include "estimate/resolved_query.h"
#include "ir/query.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "text/analyzer.h"

namespace useful::estimate {
namespace {

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Estimator keys under test: the registry plus the parametrized form.
std::vector<std::string> EstimatorNames() {
  std::vector<std::string> names = KnownEstimators();
  names.push_back("subrange-k3");
  return names;
}

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<ir::SearchEngine>("db", &analyzer_);
    const char* docs[] = {
        "zorp zorp quix blat",      "zorp mumble mumble",
        "blat blat blat",           "quix zorp blat mumble",
        "mumble quix quix",         "zorp zorp zorp zorp blat",
        "blat mumble",              "quix quix quix",
        "zorp quix mumble blat",    "mumble",
    };
    int i = 0;
    for (const char* text : docs) {
      ASSERT_TRUE(engine_->Add({"d" + std::to_string(i++), text}).ok());
    }
    ASSERT_TRUE(engine_->Finalize().ok());
    auto rep = represent::BuildRepresentative(*engine_);
    ASSERT_TRUE(rep.ok());
    rep_ = std::make_unique<represent::Representative>(std::move(rep).value());
  }

  void TearDown() override { SetExpandKernel(ExpandKernel::kAuto); }

  text::Analyzer analyzer_;
  std::unique_ptr<ir::SearchEngine> engine_;
  std::unique_ptr<represent::Representative> rep_;
};

// ---------------------------------------------------------------------------
// Flat identity: annotated parsing of an undecorated query — and of the
// same query with explicit `^1` weights — is bit-identical to ParseQuery,
// and every estimator produces bit-identical estimates from either, on
// the scalar path, the batch path, and both expansion kernels.

TEST_F(SemanticsTest, FlatQueriesEstimateBitIdenticallyEverywhere) {
  const std::vector<double> thresholds = {0.0, 0.05, 0.15, 0.3, 0.5, 0.8};
  const char* texts[] = {"zorp", "zorp blat", "quix mumble zorp",
                         "blat blat mumble quix", "ghostword zorp"};
  std::vector<ExpandKernel> kernels = {ExpandKernel::kScalar};
  if (SetExpandKernel(ExpandKernel::kAvx2)) {
    kernels.push_back(ExpandKernel::kAvx2);
  }
  for (const std::string& name : EstimatorNames()) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    for (const char* text : texts) {
      ir::Query flat = ir::ParseQuery(analyzer_, text);
      auto annotated = ir::ParseAnnotatedQuery(analyzer_, text);
      ASSERT_TRUE(annotated.ok()) << text;
      // Decorate every term with an explicit ^1: same meaning, same bits.
      std::string weighted_text;
      for (const char* p = text; *p; ++p) {
        weighted_text += *p;
        if (*p != ' ' && (p[1] == ' ' || p[1] == '\0')) weighted_text += "^1";
      }
      auto weighted = ir::ParseAnnotatedQuery(analyzer_, weighted_text);
      ASSERT_TRUE(weighted.ok()) << weighted_text;

      for (const ir::Query* q :
           {&annotated.value(), &weighted.value()}) {
        ASSERT_EQ(q->size(), flat.size()) << text;
        for (std::size_t i = 0; i < flat.size(); ++i) {
          EXPECT_EQ(q->terms[i].term, flat.terms[i].term);
          EXPECT_EQ(Bits(q->terms[i].weight), Bits(flat.terms[i].weight))
              << text << " term " << i;
          EXPECT_FALSE(q->terms[i].negated);
        }
        EXPECT_EQ(q->min_should_match, 0u);
      }

      for (ExpandKernel kernel : kernels) {
        ASSERT_TRUE(SetExpandKernel(kernel));
        for (double t : thresholds) {
          UsefulnessEstimate base = est.value()->Estimate(*rep_, flat, t);
          UsefulnessEstimate via_annotated =
              est.value()->Estimate(*rep_, annotated.value(), t);
          UsefulnessEstimate via_weighted =
              est.value()->Estimate(*rep_, weighted.value(), t);
          EXPECT_EQ(Bits(base.no_doc), Bits(via_annotated.no_doc))
              << name << " \"" << text << "\" T=" << t;
          EXPECT_EQ(Bits(base.avg_sim), Bits(via_annotated.avg_sim))
              << name << " \"" << text << "\" T=" << t;
          EXPECT_EQ(Bits(base.no_doc), Bits(via_weighted.no_doc))
              << name << " \"" << weighted_text << "\" T=" << t;
          EXPECT_EQ(Bits(base.avg_sim), Bits(via_weighted.avg_sim))
              << name << " \"" << weighted_text << "\" T=" << t;
        }
        // Batch path over the annotated query vs scalar over the flat one.
        ExpansionWorkspace ws;
        ResolvedQuery rq(*rep_, annotated.value());
        std::vector<UsefulnessEstimate> batch(thresholds.size());
        est.value()->EstimateBatch(rq, thresholds, ws,
                                   std::span<UsefulnessEstimate>(batch));
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
          UsefulnessEstimate scalar =
              est.value()->Estimate(*rep_, flat, thresholds[t]);
          EXPECT_EQ(Bits(batch[t].no_doc), Bits(scalar.no_doc))
              << name << " \"" << text << "\" T=" << thresholds[t];
          EXPECT_EQ(Bits(batch[t].avg_sim), Bits(scalar.avg_sim))
              << name << " \"" << text << "\" T=" << thresholds[t];
        }
      }
      SetExpandKernel(ExpandKernel::kAuto);
    }
  }
}

// ---------------------------------------------------------------------------
// The min-should-match DP against brute-force outcome enumeration.

double MassAbove(std::span<const Spike> spikes, double t) {
  double mass = 0.0;
  for (const Spike& s : spikes) {
    if (s.exponent > t) mass += s.prob;
  }
  return mass;
}

TEST(MinMatchExpansionTest, DpMatchesBruteForceEnumeration) {
  // Three positive factors and one negated (negative-exponent) factor,
  // deliberately with colliding sums and a two-spike factor.
  ExpansionWorkspace ws;
  ws.ResetFactors(4);
  ws.factors()[0].spikes = {Spike{0.30, 0.5}, Spike{0.10, 0.2}};
  ws.factors()[1].spikes = {Spike{0.20, 0.6}};
  ws.factors()[2].spikes = {Spike{0.40, 0.3}};
  ws.factors()[3].spikes = {Spike{-0.25, 0.4}};  // negated term
  const std::size_t num_positive = 3;

  // Every outcome: factor i picks spike j or the zero outcome.
  struct Outcome {
    double exponent;
    double prob;
    std::size_t matches;
  };
  std::vector<Outcome> outcomes = {{0.0, 1.0, 0}};
  for (std::size_t fi = 0; fi < ws.factors().size(); ++fi) {
    const TermPolynomial& f = ws.factors()[fi];
    std::vector<Outcome> next;
    for (const Outcome& o : outcomes) {
      next.push_back({o.exponent, o.prob * f.ZeroProb(), o.matches});
      for (const Spike& s : f.spikes) {
        next.push_back({o.exponent + s.exponent, o.prob * s.prob,
                        o.matches + (fi < num_positive ? 1u : 0u)});
      }
    }
    outcomes = std::move(next);
  }

  // Thresholds chosen between achievable exponent sums (multiples of
  // 0.05 in [-0.25, 0.9]) so canonicalization merges cannot straddle.
  const double thresholds[] = {-0.5, -0.125, 0.025, 0.175, 0.325, 0.475,
                               0.625, 0.975};
  for (std::size_t k = 0; k <= 4; ++k) {
    std::span<const Spike> dp =
        SimilarityDistribution::ExpandWithMinMatch(ws, num_positive, k);
    for (double t : thresholds) {
      double expected = 0.0;
      for (const Outcome& o : outcomes) {
        if (o.matches >= k && o.exponent > t) expected += o.prob;
      }
      EXPECT_NEAR(MassAbove(dp, t), expected, 1e-12) << "k=" << k << " T=" << t;
    }
  }
  // k above the positive width leaves no mass at all.
  std::span<const Spike> over =
      SimilarityDistribution::ExpandWithMinMatch(ws, num_positive, 4);
  EXPECT_NEAR(MassAbove(over, -1.0), 0.0, 1e-12);
}

TEST(MinMatchExpansionTest, ZeroMinMatchIsBitIdenticalToPlainExpansion) {
  ExpansionWorkspace a, b;
  for (ExpansionWorkspace* ws : {&a, &b}) {
    ws->ResetFactors(3);
    ws->factors()[0].spikes = {Spike{0.3, 0.5}};
    ws->factors()[1].spikes = {Spike{0.2, 0.6}, Spike{0.15, 0.1}};
    ws->factors()[2].spikes = {Spike{-0.1, 0.3}};
  }
  std::span<const Spike> plain = SimilarityDistribution::ExpandWith(a);
  std::span<const Spike> msm0 =
      SimilarityDistribution::ExpandWithMinMatch(b, 2, 0);
  ASSERT_EQ(plain.size(), msm0.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(Bits(plain[i].exponent), Bits(msm0[i].exponent)) << i;
    EXPECT_EQ(Bits(plain[i].prob), Bits(msm0[i].prob)) << i;
  }
}

// ---------------------------------------------------------------------------
// Negation and MSM estimator-level properties, identical across paths.

TEST_F(SemanticsTest, AllNegatedQueryHasNoMassAboveZero) {
  auto q = ir::ParseAnnotatedQuery(analyzer_, "-zorp -blat");
  ASSERT_TRUE(q.ok());
  for (const std::string& name : EstimatorNames()) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    for (double t : {0.0, 0.1, 0.5}) {
      UsefulnessEstimate e = est.value()->Estimate(*rep_, q.value(), t);
      EXPECT_LE(e.no_doc, 1e-9) << name << " T=" << t;
    }
  }
}

TEST_F(SemanticsTest, NoDocIsNonIncreasingInMinShouldMatch) {
  for (const std::string& name : EstimatorNames()) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    auto base = ir::ParseAnnotatedQuery(analyzer_, "zorp blat quix");
    ASSERT_TRUE(base.ok());
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k <= 4; ++k) {
      ir::Query q = base.value();
      q.min_should_match = k;
      UsefulnessEstimate e = est.value()->Estimate(*rep_, q, 0.1);
      EXPECT_LE(e.no_doc, prev + 1e-9) << name << " k=" << k;
      prev = e.no_doc;
    }
  }
}

TEST_F(SemanticsTest, AnnotatedQueriesBitIdenticalAcrossKernelsAndBatch) {
  const char* texts[] = {"zorp^2.5 blat", "zorp -blat", "-zorp quix^0.5",
                         "zorp blat quix MSM 2", "zorp^3 -mumble quix MSM 1",
                         "zorp blat quix mumble MSM 4"};
  const std::vector<double> thresholds = {0.0, 0.08, 0.22, 0.45, 0.7};
  const bool have_avx2 = SetExpandKernel(ExpandKernel::kAvx2);
  SetExpandKernel(ExpandKernel::kAuto);
  for (const std::string& name : EstimatorNames()) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    for (const char* text : texts) {
      auto q = ir::ParseAnnotatedQuery(analyzer_, text);
      ASSERT_TRUE(q.ok()) << text;

      ASSERT_TRUE(SetExpandKernel(ExpandKernel::kScalar));
      std::vector<UsefulnessEstimate> scalar;
      for (double t : thresholds) {
        scalar.push_back(est.value()->Estimate(*rep_, q.value(), t));
      }
      // Batch path under the scalar kernel.
      ExpansionWorkspace ws;
      ResolvedQuery rq(*rep_, q.value());
      std::vector<UsefulnessEstimate> batch(thresholds.size());
      est.value()->EstimateBatch(rq, thresholds, ws,
                                 std::span<UsefulnessEstimate>(batch));
      for (std::size_t t = 0; t < thresholds.size(); ++t) {
        EXPECT_EQ(Bits(batch[t].no_doc), Bits(scalar[t].no_doc))
            << name << " \"" << text << "\" T=" << thresholds[t];
        EXPECT_EQ(Bits(batch[t].avg_sim), Bits(scalar[t].avg_sim))
            << name << " \"" << text << "\" T=" << thresholds[t];
      }
      if (have_avx2) {
        ASSERT_TRUE(SetExpandKernel(ExpandKernel::kAvx2));
        for (std::size_t t = 0; t < thresholds.size(); ++t) {
          UsefulnessEstimate avx =
              est.value()->Estimate(*rep_, q.value(), thresholds[t]);
          EXPECT_EQ(Bits(avx.no_doc), Bits(scalar[t].no_doc))
              << name << " \"" << text << "\" T=" << thresholds[t];
          EXPECT_EQ(Bits(avx.avg_sim), Bits(scalar[t].avg_sim))
              << name << " \"" << text << "\" T=" << thresholds[t];
        }
      }
      SetExpandKernel(ExpandKernel::kAuto);
    }
  }
}

}  // namespace
}  // namespace useful::estimate
