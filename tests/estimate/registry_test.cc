#include "estimate/registry.h"

#include <gtest/gtest.h>

#include "estimate/subrange_estimator.h"

namespace useful::estimate {
namespace {

TEST(RegistryTest, BuildsEveryKnownEstimator) {
  for (const std::string& name : KnownEstimators()) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok()) << name;
    EXPECT_NE(est.value(), nullptr) << name;
  }
}

TEST(RegistryTest, SubrangeDefaultUsesPaperConfig) {
  auto est = MakeEstimator("subrange");
  ASSERT_TRUE(est.ok());
  EXPECT_NE(est.value()->name().find("[max]"), std::string::npos);
}

TEST(RegistryTest, SubrangeNoMaxDropsMaxSubrange) {
  auto est = MakeEstimator("subrange-nomax");
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value()->name().find("[max]"), std::string::npos);
}

TEST(RegistryTest, SubrangeKParsesCount) {
  auto est = MakeEstimator("subrange-k8");
  ASSERT_TRUE(est.ok());
  auto* sub = dynamic_cast<SubrangeEstimator*>(est.value().get());
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->options().config.subranges().size(), 8u);
  EXPECT_TRUE(sub->options().config.with_max_subrange());
}

TEST(RegistryTest, SubrangeKRejectsGarbage) {
  EXPECT_FALSE(MakeEstimator("subrange-k").ok());
  EXPECT_FALSE(MakeEstimator("subrange-kx").ok());
  EXPECT_FALSE(MakeEstimator("subrange-k0").ok());
  EXPECT_FALSE(MakeEstimator("subrange-k9z").ok());
  EXPECT_FALSE(MakeEstimator("subrange-k1000").ok());
}

TEST(RegistryTest, UnknownNameFails) {
  auto est = MakeEstimator("bm25");
  EXPECT_FALSE(est.ok());
  EXPECT_EQ(est.status().code(), Status::Code::kNotFound);
}

TEST(RegistryTest, EstimatorsActuallyEstimate) {
  represent::Representative rep("e", 100,
                                represent::RepresentativeKind::kQuadruplet);
  rep.Put("t", represent::TermStats{0.3, 0.2, 0.05, 0.5, 30});
  ir::Query q;
  q.terms = {{"t", 1.0}};
  for (const std::string& name : KnownEstimators()) {
    auto est = MakeEstimator(name);
    ASSERT_TRUE(est.ok());
    UsefulnessEstimate u = est.value()->Estimate(rep, q, 0.1);
    EXPECT_GE(u.no_doc, 0.0) << name;
  }
}

}  // namespace
}  // namespace useful::estimate
