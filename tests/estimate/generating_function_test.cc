#include "estimate/generating_function.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace useful::estimate {
namespace {

// The paper's Example 3.1/3.2: q = (1,1,1), representative
// (p1,w1)=(0.6,2), (p2,w2)=(0.2,1), (p3,w3)=(0.4,2). Expanding
// (0.6 X^2 + 0.4)(0.2 X + 0.8)(0.4 X^2 + 0.6) gives
// 0.048 X^5 + 0.192 X^4 + 0.104 X^3 + 0.416 X^2 + 0.048 X + 0.192.
std::vector<TermPolynomial> Example31Factors() {
  return {
      TermPolynomial{{Spike{2.0, 0.6}}},
      TermPolynomial{{Spike{1.0, 0.2}}},
      TermPolynomial{{Spike{2.0, 0.4}}},
  };
}

TEST(GeneratingFunctionTest, Example32Coefficients) {
  auto dist = SimilarityDistribution::Expand(Example31Factors());
  const auto& spikes = dist.spikes();
  ASSERT_EQ(spikes.size(), 6u);
  const double expected[][2] = {{5, 0.048}, {4, 0.192}, {3, 0.104},
                                {2, 0.416}, {1, 0.048}, {0, 0.192}};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(spikes[i].exponent, expected[i][0], 1e-12) << i;
    EXPECT_NEAR(spikes[i].prob, expected[i][1], 1e-12) << i;
  }
}

TEST(GeneratingFunctionTest, Example32Estimates) {
  auto dist = SimilarityDistribution::Expand(Example31Factors());
  // est_NoDoc(3, q, D) = 5 * (0.048 + 0.192) = 1.2.
  EXPECT_NEAR(dist.EstimateNoDoc(3.0, 5), 1.2, 1e-12);
  // est_AvgSim(3, q, D) = (0.048*5 + 0.192*4) / 0.24 = 4.2.
  EXPECT_NEAR(dist.EstimateAvgSim(3.0), 4.2, 1e-12);
}

TEST(GeneratingFunctionTest, EmptyFactorsIsUnit) {
  auto dist = SimilarityDistribution::Expand({});
  ASSERT_EQ(dist.spikes().size(), 1u);
  EXPECT_EQ(dist.spikes()[0].exponent, 0.0);
  EXPECT_EQ(dist.spikes()[0].prob, 1.0);
  EXPECT_EQ(dist.EstimateNoDoc(0.0, 100), 0.0);
}

TEST(GeneratingFunctionTest, ZeroProbComputed) {
  TermPolynomial poly{{Spike{1.0, 0.3}, Spike{2.0, 0.2}}};
  EXPECT_NEAR(poly.ZeroProb(), 0.5, 1e-12);
}

TEST(GeneratingFunctionTest, ZeroProbClampsAtZero) {
  TermPolynomial poly{{Spike{1.0, 0.7}, Spike{2.0, 0.5}}};  // over-full
  EXPECT_EQ(poly.ZeroProb(), 0.0);
}

TEST(GeneratingFunctionTest, SingleFactorPassesThrough) {
  TermPolynomial poly{{Spike{0.5, 0.25}}};
  auto dist = SimilarityDistribution::Expand({poly});
  ASSERT_EQ(dist.spikes().size(), 2u);
  EXPECT_NEAR(dist.spikes()[0].exponent, 0.5, 1e-15);
  EXPECT_NEAR(dist.spikes()[0].prob, 0.25, 1e-15);
  EXPECT_NEAR(dist.spikes()[1].prob, 0.75, 1e-15);
}

TEST(GeneratingFunctionTest, MergesEqualExponents) {
  // (0.5 X + 0.5)^2 = 0.25 X^2 + 0.5 X + 0.25.
  TermPolynomial coin{{Spike{1.0, 0.5}}};
  auto dist = SimilarityDistribution::Expand({coin, coin});
  ASSERT_EQ(dist.spikes().size(), 3u);
  EXPECT_NEAR(dist.spikes()[1].prob, 0.5, 1e-12);
}

TEST(GeneratingFunctionTest, MassAboveBoundaryIsStrict) {
  auto dist = SimilarityDistribution::Expand({TermPolynomial{{Spike{2.0, 0.3}}}});
  // Spike exactly at the threshold is excluded (sim > T).
  EXPECT_NEAR(dist.MassAbove(2.0), 0.0, 1e-15);
  EXPECT_NEAR(dist.MassAbove(1.999999), 0.3, 1e-12);
}

TEST(GeneratingFunctionTest, DescendingExponentInvariant) {
  Pcg32 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TermPolynomial> factors;
    for (int f = 0; f < 5; ++f) {
      TermPolynomial poly;
      double budget = 1.0;
      for (int s = 0; s < 4; ++s) {
        double p = rng.NextDouble() * budget * 0.5;
        budget -= p;
        poly.spikes.push_back(Spike{rng.NextDouble() * 3.0, p});
      }
      factors.push_back(std::move(poly));
    }
    auto dist = SimilarityDistribution::Expand(factors);
    for (std::size_t i = 1; i < dist.spikes().size(); ++i) {
      EXPECT_LT(dist.spikes()[i].exponent, dist.spikes()[i - 1].exponent);
    }
  }
}

TEST(GeneratingFunctionTest, TotalMassIsOneForWellFormedFactors) {
  Pcg32 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TermPolynomial> factors;
    for (int f = 0; f < 6; ++f) {
      TermPolynomial poly;
      double remaining = 1.0;
      int spikes = 1 + static_cast<int>(rng.NextBounded(6));
      for (int s = 0; s < spikes; ++s) {
        double p = remaining * rng.NextDouble() * 0.4;
        remaining -= p;
        poly.spikes.push_back(Spike{rng.NextDouble(), p});
      }
      factors.push_back(std::move(poly));
    }
    auto dist = SimilarityDistribution::Expand(factors);
    EXPECT_NEAR(dist.TotalMass(), 1.0, 1e-9);
  }
}

TEST(GeneratingFunctionTest, MassAboveIsMonotoneInThreshold) {
  auto dist = SimilarityDistribution::Expand(Example31Factors());
  double prev = dist.MassAbove(-0.1);
  for (double t = 0.0; t < 6.0; t += 0.05) {
    double m = dist.MassAbove(t);
    EXPECT_LE(m, prev + 1e-15);
    prev = m;
  }
}

TEST(GeneratingFunctionTest, AvgSimAboveThresholdExceedsThreshold) {
  auto dist = SimilarityDistribution::Expand(Example31Factors());
  for (double t = 0.0; t < 4.5; t += 0.25) {
    if (dist.MassAbove(t) > 0.0) {
      EXPECT_GT(dist.EstimateAvgSim(t), t) << t;
    }
  }
}

TEST(GeneratingFunctionTest, AvgSimZeroWhenNoMass) {
  auto dist = SimilarityDistribution::Expand(Example31Factors());
  EXPECT_EQ(dist.EstimateAvgSim(100.0), 0.0);
}

TEST(GeneratingFunctionTest, PruneFloorDropsTinyMass) {
  ExpandOptions opts;
  opts.prob_floor = 1e-3;
  TermPolynomial poly{{Spike{1.0, 1e-4}, Spike{2.0, 0.5}}};
  auto dist = SimilarityDistribution::Expand({poly}, opts);
  // The 1e-4 spike is gone; only X^2 and X^0 remain.
  ASSERT_EQ(dist.spikes().size(), 2u);
  EXPECT_NEAR(dist.spikes()[0].exponent, 2.0, 1e-15);
}

TEST(GeneratingFunctionTest, ResolutionMergesCloseExponents) {
  ExpandOptions opts;
  opts.exponent_resolution = 0.01;
  TermPolynomial poly{{Spike{1.000, 0.2}, Spike{1.005, 0.2}}};
  auto dist = SimilarityDistribution::Expand({poly}, opts);
  ASSERT_EQ(dist.spikes().size(), 2u);  // merged spike + zero spike
  EXPECT_NEAR(dist.spikes()[0].exponent, 1.0025, 1e-9);
  EXPECT_NEAR(dist.spikes()[0].prob, 0.4, 1e-12);
}

TEST(GeneratingFunctionTest, ResolutionMergeAnchorsAtRunHead) {
  // Regression: the merge test used to compare against the run's
  // probability-weighted mean, which walks downward as spikes accumulate.
  // With spikes at 1.000 (p=0.01), 0.9915 (p=0.5), 0.9832 (p=0.4) and
  // resolution 0.01, the drifting head (~0.9917 after two merges) would
  // swallow 0.9832 even though it lies 0.0168 below the run head 1.000 —
  // collapsing spikes spread over nearly 2x the resolution. Anchoring at
  // the head's original exponent keeps 0.9832 as its own spike.
  ExpandOptions opts;
  opts.exponent_resolution = 0.01;
  TermPolynomial poly{
      {Spike{1.000, 0.01}, Spike{0.9915, 0.5}, Spike{0.9832, 0.4}}};
  auto dist = SimilarityDistribution::Expand({poly}, opts);
  // merged(1.000, 0.9915) + standalone 0.9832 + zero spike.
  ASSERT_EQ(dist.spikes().size(), 3u);
  const double merged_mean = (1.000 * 0.01 + 0.9915 * 0.5) / 0.51;
  EXPECT_NEAR(dist.spikes()[0].exponent, merged_mean, 1e-12);
  EXPECT_NEAR(dist.spikes()[0].prob, 0.51, 1e-12);
  EXPECT_NEAR(dist.spikes()[1].exponent, 0.9832, 1e-12);
  EXPECT_NEAR(dist.spikes()[1].prob, 0.4, 1e-12);
  EXPECT_NEAR(dist.spikes()[2].prob, 0.09, 1e-12);
  // The merged exponent stays within one resolution of the run head.
  EXPECT_GE(dist.spikes()[0].exponent, 1.000 - opts.exponent_resolution);
}

TEST(GeneratingFunctionTest, MergedSpikesStayWithinResolutionOfRunHead) {
  // Property: after canonicalization every spike that absorbed a run lies
  // within `resolution` of the run's opening exponent, so no two adjacent
  // output spikes can be closer than the resolution allows via drift.
  ExpandOptions opts;
  opts.exponent_resolution = 0.05;
  Pcg32 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TermPolynomial> factors;
    for (int f = 0; f < 4; ++f) {
      TermPolynomial poly;
      for (int s = 0; s < 4; ++s) {
        poly.spikes.push_back(Spike{rng.NextDouble() * 2.0, 0.2});
      }
      factors.push_back(std::move(poly));
    }
    auto dist = SimilarityDistribution::Expand(factors, opts);
    for (std::size_t i = 1; i < dist.spikes().size(); ++i) {
      // Strictly descending, and adjacent merged spikes cannot have been
      // pulled through each other by weighted-mean drift.
      EXPECT_LT(dist.spikes()[i].exponent, dist.spikes()[i - 1].exponent)
          << "trial " << trial << " index " << i;
    }
    EXPECT_NEAR(dist.TotalMass(), 1.0, 1e-9) << trial;
  }
}

TEST(GeneratingFunctionTest, SixTermsBySixSpikesStaysTractable) {
  // Worst-case experimental load: 6 query terms, 6 subranges each.
  std::vector<TermPolynomial> factors;
  Pcg32 rng(3);
  for (int f = 0; f < 6; ++f) {
    TermPolynomial poly;
    for (int s = 0; s < 6; ++s) {
      poly.spikes.push_back(Spike{rng.NextDouble(), 0.15});
    }
    factors.push_back(std::move(poly));
  }
  auto dist = SimilarityDistribution::Expand(factors);
  EXPECT_NEAR(dist.TotalMass(), 1.0, 1e-9);
  EXPECT_LE(dist.spikes().size(), 117649u);  // 7^6
}

class ForcedKernel {
 public:
  explicit ForcedKernel(ExpandKernel k) : ok_(SetExpandKernel(k)) {}
  ~ForcedKernel() { SetExpandKernel(ExpandKernel::kAuto); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

std::vector<TermPolynomial> RandomFactors(Pcg32& rng, int n_factors,
                                          int max_spikes) {
  std::vector<TermPolynomial> factors;
  for (int f = 0; f < n_factors; ++f) {
    TermPolynomial poly;
    double budget = 1.0;
    const int spikes = 1 + static_cast<int>(rng.NextBounded(
                               static_cast<std::uint32_t>(max_spikes)));
    for (int s = 0; s < spikes; ++s) {
      double p = budget * rng.NextDouble() * 0.4;
      budget -= p;
      poly.spikes.push_back(Spike{rng.NextDouble() * 3.0, p});
    }
    factors.push_back(std::move(poly));
  }
  return factors;
}

TEST(GeneratingFunctionTest, Avx2KernelBitIdenticalToScalar) {
  ForcedKernel simd(ExpandKernel::kAvx2);
  if (!simd.ok()) GTEST_SKIP() << "AVX2+FMA unavailable";
  Pcg32 rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    // Odd/even spike counts hit both the paired lanes and the tail;
    // occasional over-full factors exercise the zero-spike-absent path.
    auto factors = RandomFactors(rng, 1 + trial % 6, 7);
    if (trial % 5 == 0 && !factors.empty()) {
      factors[0].spikes.push_back(Spike{0.5, 2.0});  // ZeroProb clamps to 0
    }
    ASSERT_TRUE(SetExpandKernel(ExpandKernel::kAvx2));
    auto simd_dist = SimilarityDistribution::Expand(factors);
    ASSERT_TRUE(SetExpandKernel(ExpandKernel::kScalar));
    auto scalar_dist = SimilarityDistribution::Expand(factors);
    ASSERT_EQ(simd_dist.spikes().size(), scalar_dist.spikes().size()) << trial;
    for (std::size_t i = 0; i < simd_dist.spikes().size(); ++i) {
      EXPECT_EQ(simd_dist.spikes()[i].exponent,
                scalar_dist.spikes()[i].exponent)
          << trial << ":" << i;
      EXPECT_EQ(simd_dist.spikes()[i].prob, scalar_dist.spikes()[i].prob)
          << trial << ":" << i;
    }
  }
}

TEST(GeneratingFunctionTest, KernelForcingRoundTrips) {
  ForcedKernel scalar(ExpandKernel::kScalar);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(ActiveExpandKernel(), ExpandKernel::kScalar);
  SetExpandKernel(ExpandKernel::kAuto);
  EXPECT_NE(ActiveExpandKernel(), ExpandKernel::kAuto);
}

TEST(GeneratingFunctionTest, Example32HoldsUnderEveryKernel) {
  for (auto k : {ExpandKernel::kScalar, ExpandKernel::kAvx2}) {
    ForcedKernel forced(k);
    if (!forced.ok()) continue;
    auto dist = SimilarityDistribution::Expand(Example31Factors());
    ASSERT_EQ(dist.spikes().size(), 6u);
    EXPECT_NEAR(dist.spikes()[0].prob, 0.048, 1e-12);
    EXPECT_NEAR(dist.EstimateNoDoc(3.0, 5), 1.2, 1e-12);
  }
}

TEST(GeneratingFunctionTest, ExpandWithMatchesExpandBitForBit) {
  std::vector<TermPolynomial> factors;
  Pcg32 rng(7);
  for (int f = 0; f < 4; ++f) {
    TermPolynomial poly;
    for (int s = 0; s < 5; ++s) {
      poly.spikes.push_back(Spike{rng.NextDouble(), 0.18});
    }
    factors.push_back(std::move(poly));
  }
  auto dist = SimilarityDistribution::Expand(factors);

  ExpansionWorkspace ws;
  ws.ResetFactors(factors.size());
  for (std::size_t f = 0; f < factors.size(); ++f) {
    ws.factors()[f].spikes = factors[f].spikes;
  }
  std::span<const Spike> spikes = SimilarityDistribution::ExpandWith(ws);

  ASSERT_EQ(spikes.size(), dist.spikes().size());
  for (std::size_t i = 0; i < spikes.size(); ++i) {
    EXPECT_EQ(spikes[i].exponent, dist.spikes()[i].exponent) << i;
    EXPECT_EQ(spikes[i].prob, dist.spikes()[i].prob) << i;
  }
  EXPECT_EQ(SimilarityDistribution::MassAbove(spikes, 0.5),
            dist.MassAbove(0.5));
  EXPECT_EQ(SimilarityDistribution::WeightedMassAbove(spikes, 0.5),
            dist.WeightedMassAbove(0.5));
  EXPECT_EQ(SimilarityDistribution::EstimateNoDoc(spikes, 0.5, 1000),
            dist.EstimateNoDoc(0.5, 1000));
  EXPECT_EQ(SimilarityDistribution::EstimateAvgSim(spikes, 0.5),
            dist.EstimateAvgSim(0.5));
}

TEST(GeneratingFunctionTest, WorkspaceReuseAcrossExpansionsIsClean) {
  ExpansionWorkspace ws;
  // First expansion: two factors.
  ws.ResetFactors(2);
  ws.factors()[0].spikes.push_back(Spike{0.5, 0.3});
  ws.factors()[1].spikes.push_back(Spike{0.25, 0.4});
  std::span<const Spike> first = SimilarityDistribution::ExpandWith(ws);
  EXPECT_EQ(first.size(), 4u);  // {0.75, 0.5, 0.25, 0}

  // Second expansion on the same workspace: one factor; stale factors and
  // spikes from the first run must be gone.
  ws.ResetFactors(1);
  ws.factors()[0].spikes.push_back(Spike{0.9, 0.1});
  std::span<const Spike> second = SimilarityDistribution::ExpandWith(ws);
  auto expected = SimilarityDistribution::Expand(
      {TermPolynomial{{Spike{0.9, 0.1}}}});
  ASSERT_EQ(second.size(), expected.spikes().size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second[i].exponent, expected.spikes()[i].exponent);
    EXPECT_EQ(second[i].prob, expected.spikes()[i].prob);
  }
}

TEST(GeneratingFunctionTest, ResetFactorsKeepsSlotCountExact) {
  ExpansionWorkspace ws;
  ws.ResetFactors(3);
  EXPECT_EQ(ws.factors().size(), 3u);
  ws.factors()[2].spikes.push_back(Spike{1.0, 0.5});
  ws.ResetFactors(2);
  EXPECT_EQ(ws.factors().size(), 2u);
  for (const TermPolynomial& f : ws.factors()) {
    EXPECT_TRUE(f.spikes.empty());
  }
  ws.ResetFactors(5);
  EXPECT_EQ(ws.factors().size(), 5u);
  for (const TermPolynomial& f : ws.factors()) {
    EXPECT_TRUE(f.spikes.empty());
  }
}

TEST(GeneratingFunctionTest, ExpandWithEmptyFactorListIsUnitDistribution) {
  ExpansionWorkspace ws;
  ws.ResetFactors(0);
  std::span<const Spike> spikes = SimilarityDistribution::ExpandWith(ws);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0].exponent, 0.0);
  EXPECT_EQ(spikes[0].prob, 1.0);
}

}  // namespace
}  // namespace useful::estimate
