#include "corpus/query_log.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "text/analyzer.h"
#include "util/string_util.h"

namespace useful::corpus {
namespace {

class QueryLogTest : public ::testing::Test {
 protected:
  static const NewsgroupSimulator& Sim() {
    static const NewsgroupSimulator* sim = [] {
      NewsgroupSimOptions opts;
      opts.num_groups = 8;
      opts.vocabulary_size = 3000;
      opts.topical_terms_per_group = 150;
      opts.median_doc_length = 40.0;
      return new NewsgroupSimulator(opts);
    }();
    return *sim;
  }
};

TEST_F(QueryLogTest, GeneratesRequestedCount) {
  QueryLogOptions opts;
  opts.num_queries = 500;
  auto queries = QueryLogGenerator(opts).Generate(Sim());
  EXPECT_EQ(queries.size(), 500u);
}

TEST_F(QueryLogTest, DefaultCountMatchesPaper) {
  QueryLogOptions opts;
  EXPECT_EQ(opts.num_queries, 6234u);
}

TEST_F(QueryLogTest, QueriesHaveAtMostSixDistinctTerms) {
  QueryLogOptions opts;
  opts.num_queries = 2000;
  auto queries = QueryLogGenerator(opts).Generate(Sim());
  for (const Query& q : queries) {
    auto words = SplitNonEmpty(q.text, " ");
    EXPECT_GE(words.size(), 1u);
    EXPECT_LE(words.size(), 6u);
    std::unordered_set<std::string_view> distinct(words.begin(), words.end());
    EXPECT_EQ(distinct.size(), words.size()) << q.text;
  }
}

TEST_F(QueryLogTest, AboutThirtyPercentSingleTerm) {
  QueryLogOptions opts;
  opts.num_queries = 4000;
  auto queries = QueryLogGenerator(opts).Generate(Sim());
  std::size_t single = 0;
  for (const Query& q : queries) {
    if (q.text.find(' ') == std::string::npos) ++single;
  }
  double frac = static_cast<double>(single) / 4000.0;
  EXPECT_NEAR(frac, 0.30, 0.03);
}

TEST_F(QueryLogTest, DeterministicForSeed) {
  QueryLogOptions opts;
  opts.num_queries = 100;
  auto a = QueryLogGenerator(opts).Generate(Sim());
  auto b = QueryLogGenerator(opts).Generate(Sim());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
  }
}

TEST_F(QueryLogTest, SeedChangesQueries) {
  QueryLogOptions opts;
  opts.num_queries = 100;
  auto a = QueryLogGenerator(opts).Generate(Sim());
  opts.seed += 1;
  auto b = QueryLogGenerator(opts).Generate(Sim());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].text != b[i].text) ++differing;
  }
  EXPECT_GT(differing, 50u);
}

TEST_F(QueryLogTest, IdsAreUnique) {
  QueryLogOptions opts;
  opts.num_queries = 300;
  auto queries = QueryLogGenerator(opts).Generate(Sim());
  std::unordered_set<std::string> ids;
  for (const Query& q : queries) {
    EXPECT_TRUE(ids.insert(q.id).second);
  }
}

TEST_F(QueryLogTest, QueryTermsComeFromVocabulary) {
  const Vocabulary& vocab = Sim().vocabulary();
  std::unordered_set<std::string_view> words;
  for (const std::string& w : vocab.words()) words.insert(w);
  QueryLogOptions opts;
  opts.num_queries = 200;
  for (const Query& q : QueryLogGenerator(opts).Generate(Sim())) {
    for (std::string_view w : SplitNonEmpty(q.text, " ")) {
      EXPECT_TRUE(words.count(w)) << w;
    }
  }
}

TEST_F(QueryLogTest, CustomLengthDistribution) {
  QueryLogOptions opts;
  opts.num_queries = 500;
  opts.length_probs = {1.0};  // all single-term
  for (const Query& q : QueryLogGenerator(opts).Generate(Sim())) {
    EXPECT_EQ(q.text.find(' '), std::string::npos);
  }
}

}  // namespace
}  // namespace useful::corpus
