#include "corpus/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace useful::corpus {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("useful_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

Collection MakeCollection() {
  Collection c("newsgroup-x");
  c.Add(Document{"x/d1", "alpha beta gamma"});
  c.Add(Document{"x/d2", "delta epsilon"});
  c.Add(Document{"x/d3", ""});  // empty body must round-trip
  return c;
}

TEST_F(IoTest, CollectionRoundTrip) {
  Collection orig = MakeCollection();
  ASSERT_TRUE(SaveCollection(orig, Path("c.txt")).ok());
  auto loaded = LoadCollection(Path("c.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Collection& c = loaded.value();
  EXPECT_EQ(c.name(), "newsgroup-x");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.doc(0).id, "x/d1");
  EXPECT_EQ(c.doc(0).text, "alpha beta gamma");
  EXPECT_EQ(c.doc(2).text, "");
}

TEST_F(IoTest, MultilineTextRoundTrip) {
  Collection c("ml");
  c.Add(Document{"d", "line one\nline two\nline three"});
  ASSERT_TRUE(SaveCollection(c, Path("ml.txt")).ok());
  auto loaded = LoadCollection(Path("ml.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().doc(0).text, "line one\nline two\nline three");
}

TEST_F(IoTest, LoadMissingFileFails) {
  auto r = LoadCollection(Path("nope.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kIOError);
}

TEST_F(IoTest, LoadDetectsUnterminatedDoc) {
  std::ofstream out(Path("bad.txt"));
  out << "<DOC>\n<DOCNO>d</DOCNO>\n<TEXT>\nbody\n</TEXT>\n";  // no </DOC>
  out.close();
  auto r = LoadCollection(Path("bad.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST_F(IoTest, LoadDetectsNestedDoc) {
  std::ofstream out(Path("nested.txt"));
  out << "<DOC>\n<DOC>\n";
  out.close();
  EXPECT_FALSE(LoadCollection(Path("nested.txt")).ok());
}

TEST_F(IoTest, LoadDetectsStrayCloseDoc) {
  std::ofstream out(Path("stray.txt"));
  out << "</DOC>\n";
  out.close();
  EXPECT_FALSE(LoadCollection(Path("stray.txt")).ok());
}

TEST_F(IoTest, NameFallsBackToFileStem) {
  std::ofstream out(Path("unnamed.txt"));
  out << "<DOC>\n<DOCNO>d</DOCNO>\n<TEXT>\nx\n</TEXT>\n</DOC>\n";
  out.close();
  auto r = LoadCollection(Path("unnamed.txt"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().name(), "unnamed");
}

TEST_F(IoTest, QueryLogRoundTrip) {
  std::vector<Query> queries = {{"q1", "alpha beta"}, {"q2", "gamma"}};
  ASSERT_TRUE(SaveQueryLog(queries, Path("q.tsv")).ok());
  auto loaded = LoadQueryLog(Path("q.tsv"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].id, "q1");
  EXPECT_EQ(loaded.value()[0].text, "alpha beta");
  EXPECT_EQ(loaded.value()[1].text, "gamma");
}

TEST_F(IoTest, QueryLogRejectsMissingTab) {
  std::ofstream out(Path("badq.tsv"));
  out << "no-tab-here\n";
  out.close();
  auto r = LoadQueryLog(Path("badq.tsv"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kCorruption);
}

TEST_F(IoTest, QueryLogSkipsBlankLines) {
  std::ofstream out(Path("blank.tsv"));
  out << "q1\talpha\n\nq2\tbeta\n";
  out.close();
  auto r = LoadQueryLog(Path("blank.tsv"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST_F(IoTest, HandlesCrLfFiles) {
  std::ofstream out(Path("crlf.tsv"));
  out << "q1\talpha beta\r\n";
  out.close();
  auto r = LoadQueryLog(Path("crlf.tsv"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].text, "alpha beta");
}

}  // namespace
}  // namespace useful::corpus
