// Statistical realism of the synthetic testbed: the substitution for the
// Stanford corpus is only valid if the generated text exhibits the
// skewed laws the estimators are sensitive to — Zipfian document
// frequencies, sublinear vocabulary growth, within-term weight variance
// (what the subranges model), and cross-group topical separation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "corpus/newsgroup_sim.h"
#include "ir/search_engine.h"
#include "represent/builder.h"

namespace useful::corpus {
namespace {

class StatisticsTest : public ::testing::Test {
 protected:
  static const NewsgroupSimulator& Sim() {
    static const NewsgroupSimulator* sim = [] {
      NewsgroupSimOptions opts;
      opts.num_groups = 6;
      opts.vocabulary_size = 6000;
      opts.topical_terms_per_group = 250;
      return new NewsgroupSimulator(opts);
    }();
    return *sim;
  }

  static const ir::SearchEngine& Engine() {
    static const ir::SearchEngine* engine = [] {
      static text::Analyzer analyzer;
      auto* e = new ir::SearchEngine("g0", &analyzer);
      EXPECT_TRUE(e->AddCollection(Sim().groups()[0]).ok());
      EXPECT_TRUE(e->Finalize().ok());
      return e;
    }();
    return *engine;
  }
};

TEST_F(StatisticsTest, DocumentFrequenciesAreSkewed) {
  const ir::SearchEngine& engine = Engine();
  std::vector<std::size_t> dfs;
  for (ir::TermId t = 0; t < engine.num_terms(); ++t) {
    dfs.push_back(engine.index().DocFreq(t));
  }
  std::sort(dfs.begin(), dfs.end(), std::greater<>());
  ASSERT_GT(dfs.size(), 100u);
  // Zipf-like head/tail contrast: the top term appears in far more
  // documents than the median term.
  EXPECT_GT(dfs[0], 20 * dfs[dfs.size() / 2]);
  // And a long tail of hapax-like terms exists.
  std::size_t rare = 0;
  for (std::size_t df : dfs) rare += (df <= 2);
  EXPECT_GT(rare, dfs.size() / 4);
}

TEST_F(StatisticsTest, VocabularyGrowsSublinearly) {
  // Heaps-law flavour: doubling the text should far less than double the
  // vocabulary.
  const Collection& g = Sim().groups()[0];
  text::Analyzer analyzer;
  std::unordered_set<std::string> half_vocab, full_vocab;
  for (std::size_t d = 0; d < g.size(); ++d) {
    for (const std::string& token : analyzer.Analyze(g.doc(d).text)) {
      if (d < g.size() / 2) half_vocab.insert(token);
      full_vocab.insert(token);
    }
  }
  double growth = static_cast<double>(full_vocab.size()) /
                  static_cast<double>(half_vocab.size());
  EXPECT_LT(growth, 1.6);
  EXPECT_GT(growth, 1.0);
}

TEST_F(StatisticsTest, TermWeightsHaveVariance) {
  // The subrange decomposition only matters if sigma > 0 for a healthy
  // share of multi-document terms.
  auto rep = represent::BuildRepresentative(Engine());
  ASSERT_TRUE(rep.ok());
  std::size_t multi = 0, with_variance = 0;
  for (const auto& [term, ts] : rep.value().stats()) {
    if (ts.doc_freq < 3) continue;
    ++multi;
    if (ts.stddev > 0.01 * ts.avg_weight) ++with_variance;
  }
  ASSERT_GT(multi, 50u);
  EXPECT_GT(static_cast<double>(with_variance) / static_cast<double>(multi),
            0.8);
}

TEST_F(StatisticsTest, MaxWeightExceedsAverageForBurstyTerms) {
  // Focus-term generation must create documents far above the term mean —
  // the upper subrange the paper's method feeds on.
  auto rep = represent::BuildRepresentative(Engine());
  ASSERT_TRUE(rep.ok());
  std::size_t bursty = 0, considered = 0;
  for (const auto& [term, ts] : rep.value().stats()) {
    if (ts.doc_freq < 5) continue;
    ++considered;
    if (ts.max_weight > ts.avg_weight + 2.0 * ts.stddev) ++bursty;
  }
  ASSERT_GT(considered, 30u);
  EXPECT_GT(static_cast<double>(bursty) / static_cast<double>(considered),
            0.3);
}

TEST_F(StatisticsTest, GroupsAreTopicallySeparated) {
  // A group's documents must look more like their own group's term
  // distribution than like another group's — the property that makes
  // source selection non-trivial. Proxy: per-group top terms overlap
  // little across groups.
  text::Analyzer analyzer;
  auto top_terms = [&](const Collection& g) {
    std::unordered_map<std::string, std::size_t> tf;
    for (const Document& d : g.docs()) {
      for (const std::string& token : analyzer.Analyze(d.text)) ++tf[token];
    }
    std::vector<std::pair<std::size_t, std::string>> ranked;
    for (auto& [term, f] : tf) ranked.emplace_back(f, term);
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    std::unordered_set<std::string> top;
    for (std::size_t i = 30; i < ranked.size() && top.size() < 50; ++i) {
      top.insert(ranked[i].second);  // skip the shared background head
    }
    return top;
  };
  auto a = top_terms(Sim().groups()[1]);
  auto b = top_terms(Sim().groups()[2]);
  std::size_t shared = 0;
  for (const std::string& t : a) shared += b.count(t);
  EXPECT_LT(shared, a.size() / 2);
}

}  // namespace
}  // namespace useful::corpus
