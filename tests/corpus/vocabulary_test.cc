#include "corpus/vocabulary.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "text/analyzer.h"

namespace useful::corpus {
namespace {

TEST(VocabularyTest, GeneratesRequestedSize) {
  Vocabulary v(1000, 1);
  EXPECT_EQ(v.size(), 1000u);
}

TEST(VocabularyTest, WordsAreDistinct) {
  Vocabulary v(5000, 2);
  std::unordered_set<std::string> seen(v.words().begin(), v.words().end());
  EXPECT_EQ(seen.size(), v.size());
}

TEST(VocabularyTest, DeterministicForSeed) {
  Vocabulary a(500, 42), b(500, 42);
  EXPECT_EQ(a.words(), b.words());
}

TEST(VocabularyTest, DifferentSeedsDiffer) {
  Vocabulary a(500, 1), b(500, 2);
  EXPECT_NE(a.words(), b.words());
}

TEST(VocabularyTest, WordsAreLowercaseAlpha) {
  Vocabulary v(2000, 3);
  for (const std::string& w : v.words()) {
    EXPECT_GE(w.size(), 4u);
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

TEST(VocabularyTest, WordsSurviveTheAnalyzer) {
  // Pseudo-words must not be stop words or get mangled by tokenization —
  // otherwise synthetic documents would silently lose terms.
  Vocabulary v(2000, 4);
  text::Analyzer analyzer;
  for (std::size_t i = 0; i < v.size(); i += 37) {
    auto terms = analyzer.Analyze(v.word(i));
    ASSERT_EQ(terms.size(), 1u) << v.word(i);
    EXPECT_EQ(terms[0], v.word(i));
  }
}

}  // namespace
}  // namespace useful::corpus
