#include "corpus/newsgroup_sim.h"

#include <gtest/gtest.h>

#include <numeric>

#include "text/analyzer.h"

namespace useful::corpus {
namespace {

// A scaled-down configuration so construction stays fast in unit tests.
NewsgroupSimOptions SmallOptions() {
  NewsgroupSimOptions opts;
  opts.num_groups = 8;
  opts.vocabulary_size = 3000;
  opts.topical_terms_per_group = 150;
  opts.median_doc_length = 40.0;
  return opts;
}

TEST(GroupSizesTest, PaperPinnedCounts) {
  NewsgroupSimOptions opts;  // 53 groups
  auto sizes = NewsgroupSimulator::GroupSizes(opts);
  ASSERT_EQ(sizes.size(), 53u);
  // D1: largest group has 761 documents.
  EXPECT_EQ(sizes[0], 761u);
  // D2: two largest sum to 1,466.
  EXPECT_EQ(sizes[0] + sizes[1], 1466u);
  // D3: 26 smallest sum to 1,014.
  std::size_t tail =
      std::accumulate(sizes.end() - 26, sizes.end(), std::size_t{0});
  EXPECT_EQ(tail, 1014u);
}

TEST(GroupSizesTest, Descending) {
  auto sizes = NewsgroupSimulator::GroupSizes(NewsgroupSimOptions{});
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GE(sizes[i - 1], sizes[i]);
  }
}

TEST(GroupSizesTest, GenericCountsNonEmpty) {
  NewsgroupSimOptions opts;
  opts.num_groups = 10;
  auto sizes = NewsgroupSimulator::GroupSizes(opts);
  ASSERT_EQ(sizes.size(), 10u);
  for (std::size_t s : sizes) EXPECT_GE(s, 3u);
}

TEST(NewsgroupSimulatorTest, BuildsRequestedGroups) {
  NewsgroupSimulator sim(SmallOptions());
  EXPECT_EQ(sim.groups().size(), 8u);
  for (const Collection& g : sim.groups()) {
    EXPECT_FALSE(g.empty());
  }
}

TEST(NewsgroupSimulatorTest, DeterministicForSeed) {
  NewsgroupSimulator a(SmallOptions()), b(SmallOptions());
  ASSERT_EQ(a.groups().size(), b.groups().size());
  for (std::size_t g = 0; g < a.groups().size(); ++g) {
    ASSERT_EQ(a.groups()[g].size(), b.groups()[g].size());
    for (std::size_t d = 0; d < a.groups()[g].size(); ++d) {
      ASSERT_EQ(a.groups()[g].doc(d).text, b.groups()[g].doc(d).text);
    }
  }
}

TEST(NewsgroupSimulatorTest, SeedChangesContent) {
  NewsgroupSimOptions opts = SmallOptions();
  NewsgroupSimulator a(opts);
  opts.seed += 1;
  NewsgroupSimulator b(opts);
  EXPECT_NE(a.groups()[0].doc(0).text, b.groups()[0].doc(0).text);
}

TEST(NewsgroupSimulatorTest, DocumentIdsAreUniqueWithinGroup) {
  NewsgroupSimulator sim(SmallOptions());
  const Collection& g = sim.groups()[0];
  std::unordered_set<std::string> ids;
  for (const Document& d : g.docs()) {
    EXPECT_TRUE(ids.insert(d.id).second) << d.id;
  }
}

TEST(NewsgroupSimulatorTest, TopicalTermsPerGroup) {
  NewsgroupSimulator sim(SmallOptions());
  for (std::size_t g = 0; g < sim.groups().size(); ++g) {
    EXPECT_EQ(sim.topical_terms(g).size(), 150u);
  }
}

TEST(NewsgroupSimulatorTest, GroupsHaveDistinctTopics) {
  NewsgroupSimulator sim(SmallOptions());
  const auto& t0 = sim.topical_terms(0);
  const auto& t1 = sim.topical_terms(1);
  std::unordered_set<std::size_t> s0(t0.begin(), t0.end());
  std::size_t shared = 0;
  for (std::size_t r : t1) shared += s0.count(r);
  // Random 150-of-3000 subsets overlap by ~7.5 terms; demand well below
  // half shared.
  EXPECT_LT(shared, 75u);
}

TEST(NewsgroupSimulatorTest, DocLengthsWithinConfiguredBand) {
  NewsgroupSimulator sim(SmallOptions());
  text::AnalyzerOptions no_stop;
  no_stop.remove_stopwords = false;
  text::Analyzer analyzer(no_stop);
  for (const Document& d : sim.groups()[0].docs()) {
    std::size_t tokens = analyzer.Analyze(d.text).size();
    EXPECT_GE(tokens, 30u);
    EXPECT_LE(tokens, 2000u);
  }
}

TEST(NewsgroupSimulatorTest, D1D2D3Recipe) {
  NewsgroupSimulator sim(SmallOptions());
  Collection d1 = sim.BuildD1();
  Collection d2 = sim.BuildD2();
  EXPECT_EQ(d1.name(), "D1");
  EXPECT_EQ(d1.size(), sim.groups()[0].size());
  EXPECT_EQ(d2.size(), sim.groups()[0].size() + sim.groups()[1].size());
}

TEST(NewsgroupSimulatorTest, FullScaleDatabaseCounts) {
  // The headline reproduction invariant: |D1| = 761, |D2| = 1466,
  // |D3| = 1014 as in the paper's testbed.
  NewsgroupSimOptions opts;
  opts.vocabulary_size = 8000;  // smaller vocab to keep this test quick
  NewsgroupSimulator sim(opts);
  EXPECT_EQ(sim.BuildD1().size(), 761u);
  EXPECT_EQ(sim.BuildD2().size(), 1466u);
  EXPECT_EQ(sim.BuildD3().size(), 1014u);
}

TEST(CollectionTest, MergeAppendsDocs) {
  Collection a("a"), b("b");
  a.Add(Document{"1", "x"});
  b.Add(Document{"2", "y"});
  b.Add(Document{"3", "z"});
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.doc(2).id, "3");
  EXPECT_EQ(b.size(), 2u);  // source untouched
}

TEST(CollectionTest, TextBytesCountsIdAndText) {
  Collection c("c");
  c.Add(Document{"ab", "hello"});
  EXPECT_EQ(c.TextBytes(), 7u);
}

}  // namespace
}  // namespace useful::corpus
