#include "cluster/frontend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/backend.h"
#include "cluster/topology.h"
#include "obs/trace.h"
#include "service/handler.h"

namespace useful::cluster {
namespace {

/// One replica's scripted behavior plus call counters. Shared between
/// the test body and the backend the factory handed the Frontend.
struct ReplicaScript {
  std::atomic<bool> fail_start{false};
  /// Start succeeds, Finish fails — the mid-request death.
  std::atomic<bool> fail_finish{false};
  std::atomic<int> starts{0};
  std::atomic<int> finishes{0};
  /// Response for any request line; defaults to an empty-OK frame.
  std::function<ShardReply(const std::string&)> respond;
};

ShardReply OkReply(std::vector<std::string> payload) {
  ShardReply reply;
  reply.ok = true;
  reply.payload = std::move(payload);
  return reply;
}

class ScriptedBackend : public ShardBackend {
 public:
  explicit ScriptedBackend(ReplicaScript* script) : script_(script) {}

  Result<std::unique_ptr<Call>> Start(const std::string& line) override {
    script_->starts.fetch_add(1);
    if (script_->fail_start.load()) return Status::IOError("scripted: down");
    auto call = std::make_unique<ScriptedCall>();
    call->reply = script_->respond ? script_->respond(line) : OkReply({});
    return std::unique_ptr<Call>(std::move(call));
  }

  Status Finish(std::unique_ptr<Call> call, ShardReply* reply) override {
    script_->finishes.fetch_add(1);
    if (script_->fail_finish.load()) {
      return Status::IOError("scripted: died mid-request");
    }
    *reply = std::move(static_cast<ScriptedCall*>(call.get())->reply);
    return Status::OK();
  }

 private:
  struct ScriptedCall : Call {
    ShardReply reply;
  };
  ReplicaScript* script_;
};

/// 2 shards x 2 replicas of scripted backends.
class FrontendTest : public ::testing::Test {
 protected:
  void MakeFrontend(FrontendOptions options = {}) {
    auto spec = ParseClusterSpec("a:1,a:2|b:1,b:2");
    ASSERT_TRUE(spec.ok());
    frontend_ = std::make_unique<Frontend>(
        std::move(spec).value(), options,
        [this](const Endpoint&, std::size_t shard, std::size_t replica) {
          return std::make_unique<ScriptedBackend>(&scripts_[shard][replica]);
        });
  }

  service::Reply Execute(const std::string& line) {
    obs::Trace trace;
    return frontend_->Execute(line, &trace);
  }

  /// Scripts every replica of `shard` to answer rankings from `lines`.
  void RespondWithRanking(std::size_t shard, std::vector<std::string> lines) {
    for (ReplicaScript& script : scripts_[shard]) {
      script.respond = [lines](const std::string&) {
        return OkReply(lines);
      };
    }
  }

  ReplicaScript scripts_[2][2];
  std::unique_ptr<Frontend> frontend_;
};

TEST_F(FrontendTest, MergesShardRankingsAndPrefersFirstReplica) {
  MakeFrontend();
  RespondWithRanking(0, {"borealis 5 0.5", "gamma 1 0.25"});
  RespondWithRanking(1, {"aurora 3 0.75"});

  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.payload,
            (std::vector<std::string>{"borealis 5 0.5", "aurora 3 0.75",
                                      "gamma 1 0.25"}));
  // Preferred (first) replicas served; second replicas never touched.
  EXPECT_EQ(scripts_[0][0].starts.load(), 1);
  EXPECT_EQ(scripts_[0][1].starts.load(), 0);
  EXPECT_EQ(scripts_[1][1].starts.load(), 0);
  EXPECT_EQ(frontend_->stale_shards(), 0u);
}

TEST_F(FrontendTest, TopKCapsTheMergedRankingNotTheShards) {
  MakeFrontend();
  RespondWithRanking(0, {"borealis 5 0.5", "gamma 1 0.25"});
  RespondWithRanking(1, {"aurora 3 0.75"});

  service::Reply reply = Execute("ROUTE subrange 0.1 2 fox");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"borealis 5 0.5",
                                                     "aurora 3 0.75"}));
}

TEST_F(FrontendTest, FailsOverToTheSecondReplicaOnStartFailure) {
  MakeFrontend();
  RespondWithRanking(0, {"borealis 5 0.5"});
  RespondWithRanking(1, {});
  scripts_[0][0].fail_start.store(true);

  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_FALSE(reply.degraded);  // the shard answered, via replica 2
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"borealis 5 0.5"}));
  EXPECT_EQ(scripts_[0][1].starts.load(), 1);
  EXPECT_EQ(frontend_->rerouted(), 1u);
  EXPECT_GE(frontend_->shard_errors(), 1u);
  EXPECT_EQ(frontend_->stale_shards(), 0u);
}

TEST_F(FrontendTest, FailsOverWhenAReplicaDiesMidRequest) {
  MakeFrontend();
  RespondWithRanking(0, {"borealis 5 0.5"});
  RespondWithRanking(1, {});
  scripts_[0][0].fail_finish.store(true);  // accepts the write, dies reading

  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"borealis 5 0.5"}));
  EXPECT_EQ(scripts_[0][1].starts.load(), 1);
  EXPECT_EQ(frontend_->rerouted(), 1u);
}

TEST_F(FrontendTest, WholeShardDownDegradesTheReplyAndRecovers) {
  MakeFrontend();
  RespondWithRanking(0, {"borealis 5 0.5"});
  RespondWithRanking(1, {"aurora 3 0.75"});
  scripts_[0][0].fail_start.store(true);
  scripts_[0][1].fail_start.store(true);

  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_TRUE(reply.degraded);
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"aurora 3 0.75"}));
  EXPECT_EQ(frontend_->stale_shards(), 1u);
  EXPECT_EQ(frontend_->degraded_replies(), 1u);

  // The shard restarts; the next request reaches it and clears staleness.
  scripts_[0][0].fail_start.store(false);
  scripts_[0][1].fail_start.store(false);
  reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"borealis 5 0.5",
                                                     "aurora 3 0.75"}));
  EXPECT_EQ(frontend_->stale_shards(), 0u);
}

TEST_F(FrontendTest, EveryShardDownIsUnavailableNotInternal) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) script.fail_start.store(true);
  }
  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  EXPECT_EQ(reply.status.code(), Status::Code::kUnavailable);
  EXPECT_EQ(frontend_->stale_shards(), 2u);
}

TEST_F(FrontendTest, EjectedReplicaIsSkippedUntilBackoffExpires) {
  FrontendOptions options;
  options.eject_failures = 1;
  options.probe_backoff_ms = 60'000;  // effectively forever for this test
  MakeFrontend(options);
  RespondWithRanking(0, {});
  RespondWithRanking(1, {});
  scripts_[0][0].fail_start.store(true);

  ASSERT_TRUE(Execute("ROUTE subrange 0.1 0 fox").status.ok());
  int starts_after_ejection = scripts_[0][0].starts.load();
  // Ejected: later requests go straight to replica 2 without probing.
  ASSERT_TRUE(Execute("ROUTE subrange 0.1 0 fox").status.ok());
  ASSERT_TRUE(Execute("ROUTE subrange 0.1 0 fox").status.ok());
  EXPECT_EQ(scripts_[0][0].starts.load(), starts_after_ejection);
  EXPECT_EQ(scripts_[0][1].starts.load(), 3);
}

TEST_F(FrontendTest, FullyEjectedShardIsStillProbedSoRestartsRecover) {
  FrontendOptions options;
  options.eject_failures = 1;
  options.probe_backoff_ms = 60'000;
  MakeFrontend(options);
  RespondWithRanking(0, {"borealis 5 0.5"});
  RespondWithRanking(1, {});
  scripts_[0][0].fail_start.store(true);
  scripts_[0][1].fail_start.store(true);

  EXPECT_TRUE(Execute("ROUTE subrange 0.1 0 fox").degraded);
  // Both replicas ejected with an hour of backoff — but a restarted shard
  // must recover on the NEXT request, not in an hour.
  scripts_[0][0].fail_start.store(false);
  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(frontend_->stale_shards(), 0u);
}

TEST_F(FrontendTest, DownstreamProtocolErrorsPassThroughVerbatim) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        ShardReply reply;
        reply.ok = false;
        reply.error = "NotFound: unknown estimator \"nope\"";
        return reply;
      };
    }
  }
  service::Reply reply = Execute("ROUTE nope 0.1 0 fox");
  EXPECT_EQ(reply.status.code(), Status::Code::kNotFound);
  EXPECT_EQ(reply.status.message(), "unknown estimator \"nope\"");
}

TEST_F(FrontendTest, GarbledShardPayloadDegradesInsteadOfCorrupting) {
  MakeFrontend();
  RespondWithRanking(0, {"torn line without scores"});
  RespondWithRanking(1, {"aurora 3 0.75"});

  service::Reply reply = Execute("ROUTE subrange 0.1 0 fox");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_TRUE(reply.degraded);
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"aurora 3 0.75"}));
  EXPECT_GE(frontend_->shard_errors(), 1u);
}

TEST_F(FrontendTest, StatsAggregatesSummableDownstreamCounters) {
  MakeFrontend();
  for (std::size_t s = 0; s < 2; ++s) {
    for (ReplicaScript& script : scripts_[s]) {
      script.respond = [](const std::string& line) {
        EXPECT_EQ(line, "STATS");
        return OkReply({"engines 3", "requests_total 10", "cache_hits 4",
                        "latency_p99_us 500"});
      };
    }
  }
  service::Reply reply = Execute("STATS");
  ASSERT_TRUE(reply.status.ok());
  auto has_line = [&](const std::string& want) {
    for (const std::string& line : reply.payload) {
      if (line == want) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_line("cluster_shards 2"));
  EXPECT_TRUE(has_line("cluster_replicas 4"));
  EXPECT_TRUE(has_line("stale_shards 0"));
  EXPECT_TRUE(has_line("shard0_live_replicas 2"));
  EXPECT_TRUE(has_line("shard1_live_replicas 2"));
  // One replica per shard answered: 3 + 3 engines, 10 + 10 requests.
  EXPECT_TRUE(has_line("agg_engines 6"));
  EXPECT_TRUE(has_line("agg_requests_total 20"));
  EXPECT_TRUE(has_line("agg_cache_hits 8"));
  // Latency percentiles are not summable and must not be aggregated.
  EXPECT_FALSE(has_line("agg_latency_p99_us 1000"));
  for (const std::string& line : reply.payload) {
    EXPECT_EQ(line.rfind("agg_latency", 0), std::string::npos) << line;
  }
}

TEST_F(FrontendTest, StatsAggregatesGaugesByMaxNotSum) {
  // Summing a gauge across shards invents numbers no server ever
  // reported: two shards each holding 10000 cache entries do not hold
  // 20000 together in any actionable sense, and snapshot_epoch 3 + 5
  // is meaningless. Gauges aggregate by max; counters keep summing.
  MakeFrontend();
  for (ReplicaScript& script : scripts_[0]) {
    script.respond = [](const std::string&) {
      return OkReply({"engines 3", "requests_total 10", "cache_entries 10000",
                      "cache_bytes 400", "snapshot_epoch 5",
                      "dispatch_queue_depth 2"});
    };
  }
  for (ReplicaScript& script : scripts_[1]) {
    script.respond = [](const std::string&) {
      return OkReply({"engines 3", "requests_total 7", "cache_entries 6000",
                      "cache_bytes 900", "snapshot_epoch 3",
                      "dispatch_queue_depth 8"});
    };
  }
  service::Reply reply = Execute("STATS");
  ASSERT_TRUE(reply.status.ok());
  auto has_line = [&](const std::string& want) {
    for (const std::string& line : reply.payload) {
      if (line == want) return true;
    }
    return false;
  };
  // Counters: summed. "engines" stays summed on purpose — shards hold
  // disjoint engine sets, so the sum is the true cluster total.
  EXPECT_TRUE(has_line("agg_engines 6"));
  EXPECT_TRUE(has_line("agg_requests_total 17"));
  // Gauges: max across shards, never the sum.
  EXPECT_TRUE(has_line("agg_cache_entries 10000"));
  EXPECT_TRUE(has_line("agg_cache_bytes 900"));
  EXPECT_TRUE(has_line("agg_snapshot_epoch 5"));
  EXPECT_TRUE(has_line("agg_dispatch_queue_depth 8"));
  EXPECT_FALSE(has_line("agg_cache_entries 16000"));
  EXPECT_FALSE(has_line("agg_snapshot_epoch 8"));
}

TEST_F(FrontendTest, AddFansToEveryReplicaAndSumsAdded) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string& line) {
        EXPECT_EQ(line, "ADD /packs/extra.urpz");  // forwarded verbatim
        return OkReply({"added 1", "engines 4"});
      };
    }
  }
  service::Reply reply = Execute("ADD /packs/extra.urpz");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_FALSE(reply.degraded);
  // One owner per shard under shard filtering; counts sum across shards.
  EXPECT_EQ(reply.payload,
            (std::vector<std::string>{"added 2", "engines 8"}));
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      EXPECT_EQ(script.starts.load(), 1);  // every replica, not one per shard
    }
  }
}

TEST_F(FrontendTest, AddWithOneDeadReplicaIsDegradedOk) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        return OkReply({"added 1", "engines 4"});
      };
    }
  }
  scripts_[1][1].fail_start.store(true);
  service::Reply reply = Execute("ADD /packs/extra.urpz");
  ASSERT_TRUE(reply.status.ok());
  // The dead replica missed the ADD: its snapshot is now behind its
  // peers', which the caller must hear about.
  EXPECT_TRUE(reply.degraded);
  EXPECT_EQ(reply.payload,
            (std::vector<std::string>{"added 2", "engines 8"}));
}

TEST_F(FrontendTest, AddFailsWhenAWholeShardMissesIt) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        return OkReply({"added 1", "engines 4"});
      };
    }
  }
  scripts_[0][0].fail_start.store(true);
  scripts_[0][1].fail_start.store(true);
  service::Reply reply = Execute("ADD /packs/extra.urpz");
  EXPECT_EQ(reply.status.code(), Status::Code::kUnavailable);
}

TEST_F(FrontendTest, AddDuplicateEngineErrorPassesThrough) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        ShardReply reply;
        reply.ok = false;
        reply.error = "InvalidArgument: duplicate engine name: sports";
        return reply;
      };
    }
  }
  service::Reply reply = Execute("ADD /packs/extra.urpz");
  EXPECT_EQ(reply.status.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(reply.status.message(), "duplicate engine name: sports");
}

TEST_F(FrontendTest, DropToleratesNonOwnerShards) {
  // Under shard placement exactly one shard owns the engine; the others
  // answer NotFound. That is topology, not an error — the frontend
  // reports the owner's count and omits the engines total (a partial
  // sum over the shards that happened to own it would lie).
  MakeFrontend();
  for (ReplicaScript& script : scripts_[0]) {
    script.respond = [](const std::string& line) {
      EXPECT_EQ(line, "DROP aurora");
      return OkReply({"dropped 1", "engines 2"});
    };
  }
  for (ReplicaScript& script : scripts_[1]) {
    script.respond = [](const std::string&) {
      ShardReply reply;
      reply.ok = false;
      reply.error = "NotFound: unknown engine: aurora";
      return reply;
    };
  }
  service::Reply reply = Execute("DROP aurora");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_FALSE(reply.degraded);  // a non-owner shard is healthy, not failed
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"dropped 1"}));
  EXPECT_EQ(frontend_->stale_shards(), 0u);
}

TEST_F(FrontendTest, DropUnknownEverywhereIsNotFound) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        ShardReply reply;
        reply.ok = false;
        reply.error = "NotFound: unknown engine: ghost";
        return reply;
      };
    }
  }
  service::Reply reply = Execute("DROP ghost");
  EXPECT_EQ(reply.status.code(), Status::Code::kNotFound);
  EXPECT_EQ(reply.status.message(), "unknown engine: ghost");
}

TEST_F(FrontendTest, UpdateFansToEveryReplicaAndSumsUpdated) {
  MakeFrontend();
  for (ReplicaScript& script : scripts_[0]) {
    script.respond = [](const std::string& line) {
      EXPECT_EQ(line, "UPDATE /packs/extra.urpz");
      return OkReply({"updated 1", "engines 3"});
    };
  }
  for (ReplicaScript& script : scripts_[1]) {
    // UPDATE of engines this shard does not hold is a no-op, not an
    // error — the service answers "updated 0".
    script.respond = [](const std::string&) {
      return OkReply({"updated 0", "engines 3"});
    };
  }
  service::Reply reply = Execute("UPDATE /packs/extra.urpz");
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.payload,
            (std::vector<std::string>{"updated 1", "engines 6"}));
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      EXPECT_EQ(script.starts.load(), 1);
    }
  }
}

TEST_F(FrontendTest, MetricsExposeClusterFamilies) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        return OkReply({"engines 3", "requests_total 7", "errors_total 1"});
      };
    }
  }
  service::Reply reply = Execute("METRICS");
  ASSERT_TRUE(reply.status.ok());
  auto has_prefix = [&](const std::string& prefix) {
    for (const std::string& line : reply.payload) {
      if (line.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_prefix("useful_cluster_shards 2"));
  EXPECT_TRUE(has_prefix("useful_cluster_stale_shards 0"));
  EXPECT_TRUE(has_prefix("useful_cluster_live_replicas{shard=\"0\"} 2"));
  EXPECT_TRUE(has_prefix("useful_cluster_degraded_replies_total 0"));
  EXPECT_TRUE(
      has_prefix("useful_cluster_downstream_requests_total{shard=\"1\"} 7"));
  EXPECT_TRUE(
      has_prefix("useful_cluster_downstream_errors_total{shard=\"0\"} 1"));
  EXPECT_TRUE(has_prefix("useful_shard_roundtrip_seconds_count"));
}

TEST_F(FrontendTest, ReloadFansToEveryReplicaOfEveryShard) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string& line) {
        EXPECT_EQ(line, "RELOAD");
        return OkReply({"engines 3"});
      };
    }
  }
  service::Reply reply = Execute("RELOAD");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_FALSE(reply.degraded);
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"engines 6"}));
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      EXPECT_EQ(script.starts.load(), 1);  // ALL replicas, not one per shard
    }
  }
}

TEST_F(FrontendTest, ReloadWithOneDeadReplicaIsDegradedOk) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        return OkReply({"engines 3"});
      };
    }
  }
  scripts_[0][1].fail_start.store(true);
  service::Reply reply = Execute("RELOAD");
  ASSERT_TRUE(reply.status.ok());
  EXPECT_TRUE(reply.degraded);  // a replica missed the reload
  EXPECT_EQ(reply.payload, (std::vector<std::string>{"engines 6"}));
}

TEST_F(FrontendTest, ReloadFailsWhenAWholeShardMissesIt) {
  MakeFrontend();
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      script.respond = [](const std::string&) {
        return OkReply({"engines 3"});
      };
    }
  }
  scripts_[1][0].fail_start.store(true);
  scripts_[1][1].fail_start.store(true);
  service::Reply reply = Execute("RELOAD");
  EXPECT_EQ(reply.status.code(), Status::Code::kUnavailable);
}

TEST_F(FrontendTest, QuitShutsDownLocallyAndIsNeverForwarded) {
  MakeFrontend();
  service::Reply reply = Execute("QUIT");
  EXPECT_TRUE(reply.status.ok());
  EXPECT_TRUE(reply.close_connection);
  EXPECT_TRUE(reply.shutdown_server);
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      EXPECT_EQ(script.starts.load(), 0);
    }
  }
}

TEST_F(FrontendTest, ParseErrorsAreLocalAndNeverFanOut) {
  MakeFrontend();
  service::Reply reply = Execute("NONSENSE");
  EXPECT_FALSE(reply.status.ok());
  EXPECT_NE(reply.status.code(), Status::Code::kInternal);
  for (auto& shard : scripts_) {
    for (ReplicaScript& script : shard) {
      EXPECT_EQ(script.starts.load(), 0);
    }
  }
}

}  // namespace
}  // namespace useful::cluster
