#include "cluster/merge.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/frontend.h"
#include "cluster/hashing.h"
#include "cluster/topology.h"
#include "estimate/registry.h"
#include "ir/search_engine.h"
#include "obs/trace.h"
#include "represent/builder.h"
#include "represent/serialize.h"
#include "service/service.h"
#include "testing/fake_shard.h"
#include "testing/synthetic.h"
#include "text/analyzer.h"

namespace useful::cluster {
namespace {

TEST(ParseRankedLineTest, ParsesEngineAndVerbatimScoreTokens) {
  auto line = ParseRankedLine("sports 3 0.25");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line.value().engine, "sports");
  EXPECT_EQ(line.value().no_doc, 3.0);
  EXPECT_EQ(line.value().avg_sim, 0.25);
  EXPECT_EQ(line.value().no_doc_token, "3");
  EXPECT_EQ(line.value().avg_sim_token, "0.25");
}

TEST(ParseRankedLineTest, RejectsMalformedLines) {
  for (const char* bad :
       {"", "sports", "sports 3", "sports 3 0.25 extra", "sports x 0.25",
        "sports 3 y"}) {
    EXPECT_FALSE(ParseRankedLine(bad).ok()) << bad;
  }
}

TEST(FormatRankedLineTest, ReEmitsVerbatimTokens) {
  // The front-end must never reformat a score a shard produced: a token
  // that parses to the same double but is spelled differently ("0.250")
  // must survive the round trip byte-for-byte.
  auto line = ParseRankedLine("e 2.0 0.250");
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(FormatRankedLine(line.value()), "e 2.0 0.250");
}

TEST(SortRankingTest, UsesTheRankEnginesComparator) {
  std::vector<RankedLine> lines;
  Status st = ParseRankingPayload(
      {
          "delta 1 0.9",    // lowest no_doc -> last
          "bravo 2 0.5",    // ties alpha on both scores -> name breaks it
          "alpha 2 0.5",
          "charlie 2 0.7",  // same no_doc, higher avg_sim -> above the tie
          "echo 3 0.1",     // highest no_doc -> first
      },
      &lines);
  ASSERT_TRUE(st.ok()) << st.ToString();
  SortRanking(&lines);
  std::vector<std::string> order;
  for (const RankedLine& line : lines) order.push_back(line.engine);
  EXPECT_EQ(order, (std::vector<std::string>{"echo", "charlie", "alpha",
                                             "bravo", "delta"}));
}

TEST(ParseRankingPayloadTest, FailsOnAnyGarbledLine) {
  std::vector<RankedLine> lines;
  EXPECT_FALSE(
      ParseRankingPayload({"good 1 0.5", "torn payload"}, &lines).ok());
}

// ---------------------------------------------------------------------------
// The bit-identical merge property: a 2-shard front-end over in-process
// fake replicas must produce byte-for-byte the ranking of one Service
// holding every representative — for every registered estimator, across
// seeded corpora, thresholds, top-k caps, and duplicate-score ties.

class MergeFidelityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("useful_merge_fidelity_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::create_directories(dir_);

    // Four seed-varied engines plus a twin pair with identical documents
    // (identical scores) whose names hash to DIFFERENT shards, so the
    // duplicate-score tie-break crosses the merge boundary.
    BuildEngine("aurora", 11);
    BuildEngine("borealis", 12);
    BuildEngine("cascade", 13);
    BuildEngine("delta", 14);
    BuildEngine("twin-a", 99);
    BuildEngine("twin-b", 99);
    ASSERT_NE(ShardForEngine("twin-a", 2), ShardForEngine("twin-b", 2));

    std::map<std::size_t, std::vector<std::string>> shard_paths;
    std::vector<std::string> all_paths;
    for (const std::string& name : names_) {
      std::string path = (dir_ / (name + ".rep")).string();
      shard_paths[ShardForEngine(name, 2)].push_back(path);
      all_paths.push_back(path);
    }
    ASSERT_EQ(shard_paths.size(), 2u)
        << "engine name set must occupy both shards";

    oracle_ = CreateService(all_paths);
    shard_services_[0] = CreateService(shard_paths[0]);
    shard_services_[1] = CreateService(shard_paths[1]);

    auto spec = ParseClusterSpec("a:1|b:1");
    ASSERT_TRUE(spec.ok());
    frontend_ = std::make_unique<Frontend>(
        std::move(spec).value(), FrontendOptions{},
        [this](const Endpoint&, std::size_t shard, std::size_t) {
          return std::make_unique<testing::FakeShardBackend>(
              shard_services_[shard].get(), &killed_);
        });
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  void BuildEngine(const std::string& name, std::uint64_t seed) {
    testing::SyntheticCorpusOptions options = testing::VaryForSeed(seed);
    corpus::Collection collection =
        testing::MakeSyntheticCollection(options, name);
    ir::SearchEngine engine(name, &analyzer_);
    ASSERT_TRUE(engine.AddCollection(collection).ok());
    ASSERT_TRUE(engine.Finalize().ok());
    auto rep = represent::BuildRepresentative(engine);
    ASSERT_TRUE(rep.ok());
    ASSERT_TRUE(represent::SaveRepresentative(
                    rep.value(), (dir_ / (name + ".rep")).string())
                    .ok());
    names_.push_back(name);
  }

  std::unique_ptr<service::Service> CreateService(
      const std::vector<std::string>& paths) {
    service::ServiceOptions options;
    options.representative_paths = paths;
    auto service = service::Service::Create(&analyzer_, options);
    EXPECT_TRUE(service.ok()) << service.status().ToString();
    return std::move(service).value();
  }

  service::Reply Fronted(const std::string& line) {
    obs::Trace trace;
    return frontend_->Execute(line, &trace);
  }

  text::Analyzer analyzer_;
  std::filesystem::path dir_;
  std::vector<std::string> names_;
  std::unique_ptr<service::Service> oracle_;
  std::unique_ptr<service::Service> shard_services_[2];
  std::unique_ptr<Frontend> frontend_;
  std::atomic<bool> killed_{false};  // replicas stay alive throughout
};

TEST_F(MergeFidelityTest, MergedRankingIsBitIdenticalForEveryEstimator) {
  std::vector<std::string> queries = {"zq0x", "zq1x zq2x",
                                      "zq0x zq3x zq5x zq9x"};
  for (const std::string& text : testing::MakeSyntheticQueryTexts(
           testing::VaryForSeed(11), {}, 7)) {
    queries.push_back(text);
  }

  std::size_t compared = 0;
  for (const std::string& estimator : estimate::KnownEstimators()) {
    for (const std::string& query : queries) {
      for (const char* threshold : {"0", "0.05", "0.2"}) {
        for (const char* command_prefix :
             {"ROUTE ", "ESTIMATE "}) {
          std::string suffix =
              std::string(command_prefix) == "ROUTE "
                  ? std::string(threshold) + " 0 " + query
                  : std::string(threshold) + " " + query;
          std::string line = command_prefix + estimator + " " + suffix;
          service::Reply fronted = Fronted(line);
          service::Reply direct = oracle_->Execute(line);
          ASSERT_EQ(fronted.status.ok(), direct.status.ok()) << line;
          EXPECT_FALSE(fronted.degraded) << line;
          ASSERT_EQ(fronted.payload.size(), direct.payload.size()) << line;
          for (std::size_t i = 0; i < direct.payload.size(); ++i) {
            EXPECT_EQ(fronted.payload[i], direct.payload[i])
                << line << " line " << i;
          }
          ++compared;
        }
      }
    }
  }
  // 5 estimators x (3 + generated) queries x 3 thresholds x 2 commands.
  EXPECT_GE(compared, 5u * 3u * 3u * 2u);
}

TEST_F(MergeFidelityTest, AnnotatedQueriesStayBitIdenticalThroughTheFrontend) {
  // The annotated grammar (weights, negation, min-should-match) travels
  // the wire verbatim: the front-end forwards the raw query text, every
  // shard parses it identically, and the merged ranking is byte-for-byte
  // the single-process oracle's — including the twins' cross-shard ties.
  const char* queries[] = {
      "zq0x^2.5 zq1x",
      "zq0x -zq1x",
      "zq0x zq2x zq3x MSM 2",
      "-zq4x zq0x^0.5 MSM 1",
      "zq0x^3 -zq1x^0.25 zq5x",
      "zq0x zq1x MSM 3",  // over-constrained: every engine scores 0
  };
  for (const std::string& estimator : estimate::KnownEstimators()) {
    for (const char* query : queries) {
      for (const char* command : {"ESTIMATE ", "ROUTE "}) {
        std::string line =
            std::string(command) == "ROUTE "
                ? std::string(command) + estimator + " 0.05 0 " + query
                : std::string(command) + estimator + " 0.05 " + query;
        service::Reply fronted = Fronted(line);
        service::Reply direct = oracle_->Execute(line);
        ASSERT_EQ(fronted.status.ok(), direct.status.ok()) << line;
        EXPECT_FALSE(fronted.degraded) << line;
        ASSERT_EQ(fronted.payload.size(), direct.payload.size()) << line;
        for (std::size_t i = 0; i < direct.payload.size(); ++i) {
          EXPECT_EQ(fronted.payload[i], direct.payload[i])
              << line << " line " << i;
        }
      }
    }
  }
  // Malformed grammar: both paths reject with the same (non-internal)
  // error, and nothing leaks a torn frame.
  for (const char* bad : {"ESTIMATE subrange 0 zq0x -",
                          "ESTIMATE subrange 0 zq0x^",
                          "ESTIMATE subrange 0 zq0x MSM 1025",
                          "ROUTE subrange 0 0 zq0x -zq0x"}) {
    service::Reply fronted = Fronted(bad);
    service::Reply direct = oracle_->Execute(bad);
    EXPECT_FALSE(fronted.status.ok()) << bad;
    EXPECT_FALSE(direct.status.ok()) << bad;
    EXPECT_EQ(fronted.status.code(), direct.status.code()) << bad;
  }
}

TEST_F(MergeFidelityTest, TopKCapIsAppliedAfterTheMergeNotPerShard) {
  for (const char* topk : {"1", "2", "3"}) {
    std::string line =
        std::string("ROUTE subrange 0 ") + topk + " zq0x zq1x";
    service::Reply fronted = Fronted(line);
    service::Reply direct = oracle_->Execute(line);
    ASSERT_TRUE(fronted.status.ok());
    ASSERT_EQ(fronted.payload.size(), direct.payload.size()) << line;
    for (std::size_t i = 0; i < direct.payload.size(); ++i) {
      EXPECT_EQ(fronted.payload[i], direct.payload[i]) << line;
    }
  }
}

TEST_F(MergeFidelityTest, DuplicateScoreTwinsTieBreakByNameAcrossShards) {
  // twin-a and twin-b hold identical documents on different shards, so
  // their scores are equal for every query that matches them; the merged
  // ranking must place twin-a immediately before twin-b (name ascending),
  // exactly as the single process does.
  service::Reply fronted = Fronted("ESTIMATE subrange 0 zq0x zq1x");
  ASSERT_TRUE(fronted.status.ok());
  std::ptrdiff_t pos_a = -1, pos_b = -1;
  std::vector<RankedLine> lines;
  ASSERT_TRUE(ParseRankingPayload(fronted.payload, &lines).ok());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].engine == "twin-a") pos_a = static_cast<std::ptrdiff_t>(i);
    if (lines[i].engine == "twin-b") pos_b = static_cast<std::ptrdiff_t>(i);
  }
  ASSERT_GE(pos_a, 0);
  ASSERT_GE(pos_b, 0);
  EXPECT_EQ(pos_b, pos_a + 1);
  EXPECT_EQ(lines[pos_a].no_doc_token, lines[pos_b].no_doc_token);
  EXPECT_EQ(lines[pos_a].avg_sim_token, lines[pos_b].avg_sim_token);
}

}  // namespace
}  // namespace useful::cluster
