#include "cluster/topology.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/hashing.h"

namespace useful::cluster {
namespace {

TEST(ParseEndpointTest, ParsesHostAndPort) {
  auto ep = ParseEndpoint("127.0.0.1:7979");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep.value().host, "127.0.0.1");
  EXPECT_EQ(ep.value().port, 7979);
  EXPECT_EQ(ep.value().ToString(), "127.0.0.1:7979");
}

TEST(ParseEndpointTest, RejectsMalformedEndpoints) {
  for (const char* bad :
       {"", "host", "host:", ":7979", "host:0", "host:65536", "host:-1",
        "host:7a", "host:port", "host: 79"}) {
    EXPECT_FALSE(ParseEndpoint(bad).ok()) << bad;
  }
}

TEST(ParseClusterSpecTest, ParsesShardsAndReplicas) {
  auto spec = ParseClusterSpec("a:1,b:2|c:3");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec.value().num_shards(), 2u);
  EXPECT_EQ(spec.value().num_replicas(), 3u);
  ASSERT_EQ(spec.value().shards[0].replicas.size(), 2u);
  EXPECT_EQ(spec.value().shards[0].replicas[0], (Endpoint{"a", 1}));
  EXPECT_EQ(spec.value().shards[0].replicas[1], (Endpoint{"b", 2}));
  EXPECT_EQ(spec.value().shards[1].replicas[0], (Endpoint{"c", 3}));
}

TEST(ParseClusterSpecTest, SemicolonIsAShardSeparatorToo) {
  // ';' spares shell users from quoting '|'.
  auto spec = ParseClusterSpec("a:1;b:2");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().num_shards(), 2u);
}

TEST(ParseClusterSpecTest, RejectsEmptySpecAndEmptyShards) {
  EXPECT_FALSE(ParseClusterSpec("").ok());
  EXPECT_FALSE(ParseClusterSpec("a:1|b:x").ok());
  EXPECT_FALSE(ParseClusterSpec("nonsense").ok());
}

TEST(ParseClusterSpecTest, RejectsStrayDelimitersWithPreciseErrors) {
  // A spec that silently dropped a delimiter once meant a typo'd
  // topology booted with the wrong shard count. Every stray delimiter
  // must be rejected at parse time, and the message must name which
  // token was empty so operators can see the typo.
  struct Case {
    const char* spec;
    const char* message_fragment;
  };
  const Case kCases[] = {
      {"", "empty cluster spec"},
      {"a:1,", "empty replica 1 of shard 0 (stray ',')"},
      {",a:1", "empty replica 0 of shard 0 (stray ',')"},
      {"a:1,,b:2", "empty replica 1 of shard 0 (stray ',')"},
      {"a:1,|b:2", "empty replica 1 of shard 0 (stray ',')"},
      {"a:1|", "empty shard 1 (stray '|' or ';')"},
      {"|a:1", "empty shard 0 (stray '|' or ';')"},
      {";a:1", "empty shard 0 (stray '|' or ';')"},
      {"a:1||b:2", "empty shard 1 (stray '|' or ';')"},
      {"a:1;;b:2", "empty shard 1 (stray '|' or ';')"},
      {"a:1|;b:2", "empty shard 1 (stray '|' or ';')"},
  };
  for (const Case& c : kCases) {
    auto spec = ParseClusterSpec(c.spec);
    ASSERT_FALSE(spec.ok()) << "accepted: \"" << c.spec << '"';
    EXPECT_EQ(spec.status().code(), Status::Code::kInvalidArgument) << c.spec;
    EXPECT_NE(spec.status().message().find(c.message_fragment),
              std::string::npos)
        << '"' << c.spec << "\" produced: " << spec.status().ToString();
    if (*c.spec != '\0') {
      // The offending spec is echoed back verbatim.
      EXPECT_NE(spec.status().message().find(c.spec), std::string::npos)
          << spec.status().ToString();
    }
  }
}

TEST(EngineHashTest, IsCanonicalFnv1a64) {
  // The placement hash is a wire format: these constants are the
  // published FNV-1a offset basis / single-byte values and must never
  // change, or every deployed shard's slice is stranded.
  EXPECT_EQ(EngineHash(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(EngineHash("a"), 0xaf63dc4c8601ec8cull);
}

TEST(ShardForEngineTest, IsStableAndInRange) {
  for (std::size_t shards : {1u, 2u, 3u, 7u}) {
    for (const char* name : {"aurora", "borealis", "cascade", "delta"}) {
      std::size_t s = ShardForEngine(name, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardForEngine(name, shards)) << "unstable: " << name;
    }
  }
}

TEST(ShardForEngineTest, SpreadsEnginesAcrossShards) {
  // Not a distribution-quality proof — just that 64 distinct names do
  // not all pile onto one shard of four.
  std::set<std::size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(ShardForEngine("engine" + std::to_string(i), 4));
  }
  EXPECT_EQ(used.size(), 4u);
}

}  // namespace
}  // namespace useful::cluster
