#!/bin/sh
# Multi-process cluster smoke test, run by ctest (smoke + tsan labels).
#
#   served_cluster.sh <useful_served> <useful_frontend> <useful_client>
#                     <rep0> <rep1> <workdir> <useful_repgen>
#                     <collection0.trec> <collection1.trec>
#
# Boots a real 2-shard x 2-replica cluster — four useful_served shard
# processes, one useful_frontend, plus a single-process oracle server
# holding BOTH representatives — then walks the failure ladder:
#
#   phase 1  fronted ROUTE/ESTIMATE output is byte-identical to the
#            oracle for every estimator (the scatter-gather merge is
#            invisible to clients);
#   phase 2  kill -9 the FIRST replica of shard 0: requests keep
#            answering OK with no DEGRADED marker (failover to the
#            second replica), stale_shards stays 0, rerouted counts it;
#   phase 3  kill the second replica too: replies degrade (DEGRADED on
#            the OK header), stale_shards reports 1;
#   phase 4  restart both replicas on their old ports: the front-end
#            recovers on its own (no restart, no config change),
#            stale_shards returns to 0, and the fronted output is again
#            byte-identical to the oracle;
#   phase 5  pack both collections into mmap'd URPZ stores, boot a second
#            cluster serving them zero-copy behind a fresh front-end, and
#            compare byte-for-byte against an oracle serving the SAME
#            collections as quantized URP1 files (cross-format identity);
#            RELOAD on a packed shard must swap the mapping in place, and
#            METRICS must report the packed-store gauges;
#   phase 6  the annotated query grammar (term^weight, -term, MSM k)
#            travels the scatter-gather path verbatim: fronted replies
#            are byte-identical to the oracle's for weighted, negated,
#            and min-should-match queries, and malformed grammar gets
#            the same ERR from both.
#
# Everything shuts down via QUIT and must log a clean exit. Thread
# counts are minimal: this runs under TSan on small CI boxes.
set -e

SERVED=$1
FRONTEND=$2
CLIENT=$3
REP0=$4
REP1=$5
DIR=$6
REPGEN=$7
TREC0=$8
TREC1=$9

S0A_LOG="$DIR/cluster_s0a.out"; S0A_PORT_FILE="$DIR/cluster_s0a.port"
S0B_LOG="$DIR/cluster_s0b.out"; S0B_PORT_FILE="$DIR/cluster_s0b.port"
S1A_LOG="$DIR/cluster_s1a.out"; S1A_PORT_FILE="$DIR/cluster_s1a.port"
S1B_LOG="$DIR/cluster_s1b.out"; S1B_PORT_FILE="$DIR/cluster_s1b.port"
ORACLE_LOG="$DIR/cluster_oracle.out"; ORACLE_PORT_FILE="$DIR/cluster_oracle.port"
FE_LOG="$DIR/cluster_fe.out"; FE_PORT_FILE="$DIR/cluster_fe.port"
rm -f "$S0A_LOG" "$S0B_LOG" "$S1A_LOG" "$S1B_LOG" "$ORACLE_LOG" "$FE_LOG" \
      "$S0A_PORT_FILE" "$S0B_PORT_FILE" "$S1A_PORT_FILE" "$S1B_PORT_FILE" \
      "$ORACLE_PORT_FILE" "$FE_PORT_FILE" \
      "$DIR"/cluster_p0.out "$DIR"/cluster_p0.port \
      "$DIR"/cluster_p1.out "$DIR"/cluster_p1.port \
      "$DIR"/cluster_poracle.out "$DIR"/cluster_poracle.port \
      "$DIR"/cluster_pfe.out "$DIR"/cluster_pfe.port

ALL_PIDS=""
# Diagnostics go to stderr: fail() sometimes runs inside a $(...) whose
# stdout is being captured.
fail() {
  echo "FAIL: $1" >&2
  for log in "$S0A_LOG" "$S0B_LOG" "$S1A_LOG" "$S1B_LOG" "$ORACLE_LOG" \
             "$FE_LOG" "$DIR/cluster_p0.out" "$DIR/cluster_p1.out" \
             "$DIR/cluster_poracle.out" "$DIR/cluster_pfe.out"; do
    [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
  done
  # shellcheck disable=SC2086
  kill $ALL_PIDS 2>/dev/null || true
  exit 1
}

# start_served <log> <port_file> <port> <rep>...; sets STARTED_PID. Runs
# in the main shell (not $(...)) so the server stays wait-able.
start_served() {
  log=$1; port_file=$2; port=$3; shift 3
  rm -f "$port_file"
  "$SERVED" --port "$port" --port-file "$port_file" \
            --threads 1 --reactor-threads 1 "$@" > "$log" 2>&1 &
  STARTED_PID=$!
}

wait_port() {
  # wait_port <port_file> <pid> <what>; echoes the published port.
  i=0
  while [ $i -lt 150 ]; do
    if [ -f "$1" ]; then cat "$1"; return 0; fi
    kill -0 "$2" 2>/dev/null || fail "$3 died before publishing a port"
    sleep 0.1
    i=$((i + 1))
  done
  fail "$3 never published a port"
}

# --- boot: 2 shards x 2 replicas, the oracle, then the front-end.
start_served "$S0A_LOG" "$S0A_PORT_FILE" 0 "$REP0"; S0A_PID=$STARTED_PID
start_served "$S0B_LOG" "$S0B_PORT_FILE" 0 "$REP0"; S0B_PID=$STARTED_PID
start_served "$S1A_LOG" "$S1A_PORT_FILE" 0 "$REP1"; S1A_PID=$STARTED_PID
start_served "$S1B_LOG" "$S1B_PORT_FILE" 0 "$REP1"; S1B_PID=$STARTED_PID
start_served "$ORACLE_LOG" "$ORACLE_PORT_FILE" 0 "$REP0" "$REP1"
ORACLE_PID=$STARTED_PID
ALL_PIDS="$S0A_PID $S0B_PID $S1A_PID $S1B_PID $ORACLE_PID"

S0A_PORT=$(wait_port "$S0A_PORT_FILE" "$S0A_PID" "shard 0 replica a")
S0B_PORT=$(wait_port "$S0B_PORT_FILE" "$S0B_PID" "shard 0 replica b")
S1A_PORT=$(wait_port "$S1A_PORT_FILE" "$S1A_PID" "shard 1 replica a")
S1B_PORT=$(wait_port "$S1B_PORT_FILE" "$S1B_PID" "shard 1 replica b")
ORACLE_PORT=$(wait_port "$ORACLE_PORT_FILE" "$ORACLE_PID" "oracle")

CLUSTER="127.0.0.1:$S0A_PORT,127.0.0.1:$S0B_PORT|127.0.0.1:$S1A_PORT,127.0.0.1:$S1B_PORT"
# Short probe backoff + generous io timeout: CI may run this under TSan.
"$FRONTEND" --cluster "$CLUSTER" --port 0 --port-file "$FE_PORT_FILE" \
            --threads 1 --reactor-threads 1 \
            --probe-backoff-ms 100 --io-timeout-ms 30000 > "$FE_LOG" 2>&1 &
FE_PID=$!
ALL_PIDS="$ALL_PIDS $FE_PID"
FE_PORT=$(wait_port "$FE_PORT_FILE" "$FE_PID" "front-end")

# compare_to_oracle <tag>: fronted answers == oracle answers, byte for byte.
compare_to_oracle() {
  for est in subrange subrange-nomax basic adaptive disjoint; do
    for query in "fox dog" "fox" "dog cat mouse"; do
      "$CLIENT" --port "$FE_PORT" ESTIMATE "$est" 0.1 $query \
          > "$DIR/cluster_fe_reply" \
          || fail "$1: fronted ESTIMATE $est '$query' errored"
      "$CLIENT" --port "$ORACLE_PORT" ESTIMATE "$est" 0.1 $query \
          > "$DIR/cluster_oracle_reply" \
          || fail "$1: oracle ESTIMATE $est '$query' errored"
      cmp -s "$DIR/cluster_fe_reply" "$DIR/cluster_oracle_reply" \
          || fail "$1: ESTIMATE $est '$query' diverged from the oracle"
      "$CLIENT" --port "$FE_PORT" ROUTE "$est" 0.1 1 $query \
          > "$DIR/cluster_fe_reply" \
          || fail "$1: fronted ROUTE $est '$query' errored"
      "$CLIENT" --port "$ORACLE_PORT" ROUTE "$est" 0.1 1 $query \
          > "$DIR/cluster_oracle_reply" \
          || fail "$1: oracle ROUTE $est '$query' errored"
      cmp -s "$DIR/cluster_fe_reply" "$DIR/cluster_oracle_reply" \
          || fail "$1: ROUTE $est '$query' diverged from the oracle"
    done
  done
}

stat_value() {
  # stat_value <key>: that key's value in the front-end's STATS.
  "$CLIENT" --port "$FE_PORT" STATS | awk -v k="$1" '$1 == k {print $2}'
}

# --- phase 1: the cluster is protocol-invisible.
compare_to_oracle "phase1"
[ "$(stat_value stale_shards)" = "0" ] || fail "phase1: stale_shards != 0"
echo "phase 1 ok: fronted output byte-identical to the oracle"

# --- phase 2: kill the PREFERRED replica of shard 0 mid-load.
kill -9 "$S0A_PID"
wait "$S0A_PID" 2>/dev/null || true
REPLIES=$(yes "ROUTE subrange 0.1 0 fox dog" | head -10 | "$CLIENT" --port "$FE_PORT")
OK_COUNT=$(echo "$REPLIES" | grep -c '^OK')
[ "$OK_COUNT" = "10" ] || fail "phase2: expected 10 OK replies, got $OK_COUNT"
echo "$REPLIES" | grep '^OK' | grep -q DEGRADED \
  && fail "phase2: failover reply was DEGRADED"
[ "$(stat_value stale_shards)" = "0" ] || fail "phase2: stale_shards != 0"
REROUTED=$(stat_value rerouted)
[ "${REROUTED:-0}" -ge 1 ] || fail "phase2: rerouted=$REROUTED, expected >= 1"
compare_to_oracle "phase2"
echo "phase 2 ok: replica death absorbed by failover (rerouted=$REROUTED)"

# --- phase 3: kill the surviving replica — the whole shard is down.
kill -9 "$S0B_PID"
wait "$S0B_PID" 2>/dev/null || true
REPLIES=$(yes "ROUTE subrange 0.1 0 fox dog" | head -5 | "$CLIENT" --port "$FE_PORT")
echo "$REPLIES" | grep -q '^OK [0-9]* DEGRADED$' \
  || fail "phase3: expected DEGRADED replies with shard 0 down"
echo "$REPLIES" | grep -q '^ERR' && fail "phase3: degraded mode returned ERR"
[ "$(stat_value stale_shards)" = "1" ] || fail "phase3: stale_shards != 1"
echo "phase 3 ok: whole-shard outage degrades instead of failing"

# --- phase 4: restart both replicas on their old ports; the front-end
# must recover without any intervention.
start_served "$S0A_LOG" "$S0A_PORT_FILE" "$S0A_PORT" "$REP0"
S0A_PID=$STARTED_PID
start_served "$S0B_LOG" "$S0B_PORT_FILE" "$S0B_PORT" "$REP0"
S0B_PID=$STARTED_PID
ALL_PIDS="$ALL_PIDS $S0A_PID $S0B_PID"
wait_port "$S0A_PORT_FILE" "$S0A_PID" "restarted shard 0 replica a" >/dev/null
wait_port "$S0B_PORT_FILE" "$S0B_PID" "restarted shard 0 replica b" >/dev/null

RECOVERED=0
i=0
while [ $i -lt 50 ]; do
  HEADER=$(printf 'ROUTE subrange 0.1 0 fox dog\n' | "$CLIENT" --port "$FE_PORT" | head -1)
  case "$HEADER" in
    "OK "*DEGRADED) ;;
    OK*) RECOVERED=1; break ;;
    *) fail "phase4: unexpected reply: $HEADER" ;;
  esac
  sleep 0.1
  i=$((i + 1))
done
[ "$RECOVERED" = "1" ] || fail "phase4: front-end never recovered"
[ "$(stat_value stale_shards)" = "0" ] || fail "phase4: stale_shards != 0"
compare_to_oracle "phase4"
echo "phase 4 ok: restarted shard rejoined, output byte-identical again"

# --- phase 5: a second cluster over packed URPZ stores, cross-checked
# byte-for-byte against an oracle serving the same collections as
# quantized URP1 files. The packer and the quantizer train through the
# same code path, so the two formats must be indistinguishable on the
# wire.
P0_STORE="$DIR/cluster_s0.urpz"; P1_STORE="$DIR/cluster_s1.urpz"
O0_REP="$DIR/cluster_o0.rep"; O1_REP="$DIR/cluster_o1.rep"
"$REPGEN" "$TREC0" "$P0_STORE" --pack > /dev/null \
  || fail "phase5: packing shard 0 store failed"
"$REPGEN" "$TREC1" "$P1_STORE" --pack > /dev/null \
  || fail "phase5: packing shard 1 store failed"
"$REPGEN" "$TREC0" "$O0_REP" --quantize > /dev/null \
  || fail "phase5: quantized oracle rep 0 failed"
"$REPGEN" "$TREC1" "$O1_REP" --quantize > /dev/null \
  || fail "phase5: quantized oracle rep 1 failed"

P0_LOG="$DIR/cluster_p0.out"; P0_PORT_FILE="$DIR/cluster_p0.port"
P1_LOG="$DIR/cluster_p1.out"; P1_PORT_FILE="$DIR/cluster_p1.port"
PORACLE_LOG="$DIR/cluster_poracle.out"
PORACLE_PORT_FILE="$DIR/cluster_poracle.port"
PFE_LOG="$DIR/cluster_pfe.out"; PFE_PORT_FILE="$DIR/cluster_pfe.port"
start_served "$P0_LOG" "$P0_PORT_FILE" 0 "$P0_STORE"; P0_PID=$STARTED_PID
start_served "$P1_LOG" "$P1_PORT_FILE" 0 "$P1_STORE"; P1_PID=$STARTED_PID
start_served "$PORACLE_LOG" "$PORACLE_PORT_FILE" 0 "$O0_REP" "$O1_REP"
PORACLE_PID=$STARTED_PID
ALL_PIDS="$ALL_PIDS $P0_PID $P1_PID $PORACLE_PID"
P0_PORT=$(wait_port "$P0_PORT_FILE" "$P0_PID" "packed shard 0")
P1_PORT=$(wait_port "$P1_PORT_FILE" "$P1_PID" "packed shard 1")
PORACLE_PORT=$(wait_port "$PORACLE_PORT_FILE" "$PORACLE_PID" \
                         "packed-phase oracle")

"$FRONTEND" --cluster "127.0.0.1:$P0_PORT|127.0.0.1:$P1_PORT" \
            --port 0 --port-file "$PFE_PORT_FILE" \
            --threads 1 --reactor-threads 1 \
            --probe-backoff-ms 100 --io-timeout-ms 30000 > "$PFE_LOG" 2>&1 &
PFE_PID=$!
ALL_PIDS="$ALL_PIDS $PFE_PID"
PFE_PORT=$(wait_port "$PFE_PORT_FILE" "$PFE_PID" "packed-phase front-end")

# Give the fresh front-end until its first shard probes land: with one
# replica per shard there is no failover to hide an unprobed shard.
READY=0
i=0
while [ $i -lt 50 ]; do
  if printf 'ESTIMATE subrange 0.1 fox\n' | "$CLIENT" --port "$PFE_PORT" \
       > /dev/null 2>&1; then READY=1; break; fi
  sleep 0.1
  i=$((i + 1))
done
[ "$READY" = "1" ] || fail "phase5: packed front-end never became ready"

# The packed shard must report its store through the METRICS gauges.
SCRAPE=$("$CLIENT" --port "$P0_PORT" METRICS)
echo "$SCRAPE" | grep -q '^useful_representative_packed_engines 1$' \
  || fail "phase5: packed shard does not report packed_engines 1"
PACKED_BYTES=$(echo "$SCRAPE" \
  | awk '$1 == "useful_representative_packed_bytes" {print $2}')
[ "${PACKED_BYTES%.*}" -gt 0 ] 2>/dev/null \
  || fail "phase5: packed_bytes gauge not positive: '$PACKED_BYTES'"

# RELOAD on a packed shard is an mmap swap; it must keep serving the
# same single engine afterwards.
RELOAD_REPLY=$(printf 'RELOAD\n' | "$CLIENT" --port "$P0_PORT")
echo "$RELOAD_REPLY" | grep -q '^engines 1$' \
  || fail "phase5: RELOAD on the packed shard did not answer 'engines 1'"

SAVED_FE_PORT=$FE_PORT; SAVED_ORACLE_PORT=$ORACLE_PORT
FE_PORT=$PFE_PORT; ORACLE_PORT=$PORACLE_PORT
compare_to_oracle "phase5"
FE_PORT=$SAVED_FE_PORT; ORACLE_PORT=$SAVED_ORACLE_PORT
echo "phase 5 ok: packed-store cluster byte-identical to the URP1 oracle"

# --- phase 6: the annotated grammar end to end through the primary
# cluster. Queries go over stdin so '-term' is never mistaken for a
# client flag.
check_annotated() {
  # check_annotated <request line>: fronted reply == oracle reply.
  printf '%s\n' "$1" | "$CLIENT" --port "$FE_PORT" > "$DIR/cluster_fe_reply" \
    || fail "phase6: fronted '$1' errored"
  printf '%s\n' "$1" | "$CLIENT" --port "$ORACLE_PORT" \
      > "$DIR/cluster_oracle_reply" \
    || fail "phase6: oracle '$1' errored"
  cmp -s "$DIR/cluster_fe_reply" "$DIR/cluster_oracle_reply" \
    || fail "phase6: '$1' diverged from the oracle"
}
for est in subrange basic adaptive; do
  check_annotated "ESTIMATE $est 0.1 fox^2.5 dog"
  check_annotated "ESTIMATE $est 0.1 fox -dog"
  check_annotated "ESTIMATE $est 0.1 fox dog MSM 2"
  check_annotated "ESTIMATE $est 0.1 fox^0.5 -cat dog MSM 1"
  check_annotated "ROUTE $est 0.1 1 fox^2 -dog MSM 1"
done
# Malformed grammar: the client exits nonzero on an ERR reply, so only
# the reply bytes are compared.
for bad in "ESTIMATE subrange 0.1 fox -" "ESTIMATE subrange 0.1 fox^" \
           "ESTIMATE subrange 0.1 fox MSM 1025"; do
  printf '%s\n' "$bad" | "$CLIENT" --port "$FE_PORT" \
      > "$DIR/cluster_fe_reply" || true
  printf '%s\n' "$bad" | "$CLIENT" --port "$ORACLE_PORT" \
      > "$DIR/cluster_oracle_reply" || true
  cmp -s "$DIR/cluster_fe_reply" "$DIR/cluster_oracle_reply" \
    || fail "phase6: '$bad' diverged from the oracle"
  head -1 "$DIR/cluster_fe_reply" | grep -q '^ERR' \
    || fail "phase6: '$bad' did not produce an ERR reply"
done
echo "phase 6 ok: annotated grammar byte-identical through the front-end"

# --- clean shutdown, front-ends first (their QUIT is never forwarded).
printf 'QUIT\n' | "$CLIENT" --port "$FE_PORT" > /dev/null
wait "$FE_PID"
grep -q 'shut down cleanly' "$FE_LOG" || fail "front-end exit was not clean"
printf 'QUIT\n' | "$CLIENT" --port "$PFE_PORT" > /dev/null
wait "$PFE_PID"
grep -q 'shut down cleanly' "$PFE_LOG" \
  || fail "packed-phase front-end exit was not clean"
for port in "$S0A_PORT" "$S0B_PORT" "$S1A_PORT" "$S1B_PORT" "$ORACLE_PORT" \
            "$P0_PORT" "$P1_PORT" "$PORACLE_PORT"; do
  printf 'QUIT\n' | "$CLIENT" --port "$port" > /dev/null
done
wait "$S0A_PID" "$S0B_PID" "$S1A_PID" "$S1B_PID" "$ORACLE_PID" \
     "$P0_PID" "$P1_PID" "$PORACLE_PID"
for log in "$S0A_LOG" "$S0B_LOG" "$S1A_LOG" "$S1B_LOG" "$ORACLE_LOG" \
           "$P0_LOG" "$P1_LOG" "$PORACLE_LOG"; do
  grep -q 'shut down cleanly' "$log" || fail "$log exit was not clean"
done
echo "cluster smoke ok"
