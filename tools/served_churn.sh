#!/bin/sh
# Live-churn smoke, run by ctest (smoke + tsan labels).
#
#   served_churn.sh <useful_served> <useful_frontend> <useful_client>
#                   <useful_loadgen> <useful_repgen> <smokedir>
#
# Boots a 2-shard x 2-replica cluster (shard 0 serves group00, shard 1
# serves group01, each declaring its slice with --num-shards/--shard-index)
# behind a front-end, puts sustained open-loop loadgen traffic on it, and
# then runs >= 10 full churn cycles through the front-end while the trace
# is in flight:
#
#   ADD churn_g2.rep     exactly one shard (group02's hash owner) must
#                        register it: the fanned reply says "added 1";
#   UPDATE churn_g2.rep  the owner re-registers it: "updated 1";
#   DROP group02         the owner drops it, the other shard's NotFound
#                        is tolerated: "dropped 1".
#
# Invariants asserted every cycle:
#   - no torn snapshot: the background trace finishes with ZERO ERR
#     replies and zero transport errors (loadgen exits 0) even though
#     every reply raced a snapshot swap;
#   - untouched engines are byte-identical: mid-cycle (group02 live) the
#     group00/group01 lines of a fronted ESTIMATE equal the pre-churn
#     baseline bytes exactly, and after the DROP the whole reply does.
#
# After the cycles, a DROP of the now-absent engine must fail NotFound
# through the front-end (the tolerated per-shard NotFound only absorbs
# non-owners, not a cluster-wide miss).
set -e

SERVED=$1
FRONTEND=$2
CLIENT=$3
LOADGEN=$4
REPGEN=$5
DIR=$6

CYCLES=12

G2="$DIR/churn_g2.rep"
LG_OUT="$DIR/churn_loadgen.out"
rm -f "$G2" "$LG_OUT" "$DIR"/churn_*.out "$DIR"/churn_*.port \
      "$DIR"/churn_base.txt "$DIR"/churn_mid.txt "$DIR"/churn_end.txt

ALL_PIDS=""
fail() {
  echo "FAIL: $1" >&2
  for log in "$DIR"/churn_*.out; do
    [ -f "$log" ] && { echo "--- $log" >&2; cat "$log" >&2; }
  done
  # shellcheck disable=SC2086
  kill $ALL_PIDS 2>/dev/null || true
  exit 1
}

"$REPGEN" "$DIR/group02.trec" "$G2" --quantize > /dev/null \
  || fail "building the churn representative failed"

start_served() {
  # start_served <name> <shard-index> <rep>; sets STARTED_PID.
  log="$DIR/churn_$1.out"; port_file="$DIR/churn_$1.port"
  shard=$2; shift 2
  rm -f "$port_file"
  "$SERVED" --port 0 --port-file "$port_file" --threads 1 \
            --reactor-threads 1 --num-shards 2 --shard-index "$shard" \
            "$@" > "$log" 2>&1 &
  STARTED_PID=$!
}

wait_port() {
  # wait_port <name> <pid>; echoes the published port.
  i=0
  while [ $i -lt 150 ]; do
    if [ -f "$DIR/churn_$1.port" ]; then cat "$DIR/churn_$1.port"; return 0; fi
    kill -0 "$2" 2>/dev/null || fail "$1 died before publishing a port"
    sleep 0.1
    i=$((i + 1))
  done
  fail "$1 never published a port"
}

start_served s0a 0 "$DIR/g0.rep"; S0A_PID=$STARTED_PID
start_served s0b 0 "$DIR/g0.rep"; S0B_PID=$STARTED_PID
start_served s1a 1 "$DIR/g1.rep"; S1A_PID=$STARTED_PID
start_served s1b 1 "$DIR/g1.rep"; S1B_PID=$STARTED_PID
ALL_PIDS="$S0A_PID $S0B_PID $S1A_PID $S1B_PID"
S0A=$(wait_port s0a "$S0A_PID"); S0B=$(wait_port s0b "$S0B_PID")
S1A=$(wait_port s1a "$S1A_PID"); S1B=$(wait_port s1b "$S1B_PID")

CLUSTER="127.0.0.1:$S0A,127.0.0.1:$S0B|127.0.0.1:$S1A,127.0.0.1:$S1B"
"$FRONTEND" --cluster "$CLUSTER" --port 0 --port-file "$DIR/churn_fe.port" \
            --threads 1 --reactor-threads 1 --probe-backoff-ms 100 \
            --io-timeout-ms 30000 > "$DIR/churn_fe.out" 2>&1 &
FE_PID=$!
ALL_PIDS="$ALL_PIDS $FE_PID"
FE=$(wait_port fe "$FE_PID")

# A corpus-vocabulary probe query (nonzero scores, stable ranking).
PROBE=$(head -1 "$DIR/queries.tsv" | cut -f2)
[ -n "$PROBE" ] || fail "queries.tsv has no probe query"

# Pre-churn baseline: the byte-identity anchor for untouched engines.
# shellcheck disable=SC2086
"$CLIENT" --port "$FE" ESTIMATE subrange 0.1 $PROBE > "$DIR/churn_base.txt" \
  || fail "baseline ESTIMATE errored"
grep -q '^group00 ' "$DIR/churn_base.txt" || fail "baseline missing group00"
grep -q '^group01 ' "$DIR/churn_base.txt" || fail "baseline missing group01"

# Sustained background trace for the whole churn window; its exit code
# is the no-torn-snapshot verdict.
"$LOADGEN" --port "$FE" --connections 2 --qps 600 --queries 6000 \
           --distinct 128 --queries-file "$DIR/queries.tsv" --seed 11 \
           --tag churn > "$LG_OUT" 2>&1 &
LG_PID=$!
ALL_PIDS="$ALL_PIDS $LG_PID"

cycle=1
while [ $cycle -le $CYCLES ]; do
  "$CLIENT" --port "$FE" ADD "$G2" > "$DIR/churn_verb.out" \
    || fail "cycle $cycle: fronted ADD errored"
  grep -q '^added 1$' "$DIR/churn_verb.out" \
    || fail "cycle $cycle: ADD did not report 'added 1'"

  # Mid-cycle: group02 is live; the untouched engines' reply lines must
  # be byte-identical to the pre-churn baseline (scoped invalidation —
  # their cache generations never moved).
  # shellcheck disable=SC2086
  "$CLIENT" --port "$FE" ESTIMATE subrange 0.1 $PROBE > "$DIR/churn_mid.txt" \
    || fail "cycle $cycle: mid-cycle ESTIMATE errored"
  grep -q '^group02 ' "$DIR/churn_mid.txt" \
    || fail "cycle $cycle: added engine missing from the ranking"
  grep -E '^group00 |^group01 ' "$DIR/churn_mid.txt" \
    | cmp -s - "$DIR/churn_base.txt" \
    || fail "cycle $cycle: untouched engines' lines changed after ADD"

  "$CLIENT" --port "$FE" UPDATE "$G2" > "$DIR/churn_verb.out" \
    || fail "cycle $cycle: fronted UPDATE errored"
  grep -q '^updated 1$' "$DIR/churn_verb.out" \
    || fail "cycle $cycle: UPDATE did not report 'updated 1'"

  "$CLIENT" --port "$FE" DROP group02 > "$DIR/churn_verb.out" \
    || fail "cycle $cycle: fronted DROP errored"
  grep -q '^dropped 1$' "$DIR/churn_verb.out" \
    || fail "cycle $cycle: DROP did not report 'dropped 1'"

  # Post-drop the cluster is back to the baseline engine set: the whole
  # reply must be byte-identical.
  # shellcheck disable=SC2086
  "$CLIENT" --port "$FE" ESTIMATE subrange 0.1 $PROBE > "$DIR/churn_end.txt" \
    || fail "cycle $cycle: post-drop ESTIMATE errored"
  cmp -s "$DIR/churn_end.txt" "$DIR/churn_base.txt" \
    || fail "cycle $cycle: post-drop reply diverged from the baseline"
  cycle=$((cycle + 1))
done
echo "churn: $CYCLES add/update/drop cycles, untouched replies byte-identical"

# A cluster-wide miss must still surface as NotFound.
"$CLIENT" --port "$FE" DROP group02 > /dev/null 2>"$DIR/churn_err.txt" \
  && fail "DROP of an absent engine succeeded"
grep -q 'NotFound' "$DIR/churn_err.txt" \
  || fail "DROP of an absent engine was not NotFound"

# The owner shard's snapshot epoch moved 3x per cycle; the front-end's
# max-aggregated gauge must show it.
EPOCH=$("$CLIENT" --port "$FE" STATS \
  | awk '$1 == "agg_snapshot_epoch" {print $2}')
[ "${EPOCH:-0}" -ge "$CYCLES" ] \
  || fail "agg_snapshot_epoch=$EPOCH, expected >= $CYCLES"

wait "$LG_PID" || fail "background trace saw ERR replies or a dead connection"
grep -q ' errors=0 ' "$LG_OUT" || fail "background trace reported errors"

printf 'QUIT\n' | "$CLIENT" --port "$FE" > /dev/null
wait "$FE_PID"
grep -q 'shut down cleanly' "$DIR/churn_fe.out" \
  || fail "front-end exit was not clean"
for port in "$S0A" "$S0B" "$S1A" "$S1B"; do
  printf 'QUIT\n' | "$CLIENT" --port "$port" > /dev/null
done
wait "$S0A_PID" "$S0B_PID" "$S1A_PID" "$S1B_PID"
for name in s0a s0b s1a s1b; do
  grep -q 'shut down cleanly' "$DIR/churn_$name.out" \
    || fail "churn_$name exit was not clean"
done
echo "churn smoke ok"
