// useful_frontend: the cluster's scatter-gather front-end as a
// long-running service. Speaks the ordinary line protocol upstream on
// its own TCP port (same epoll reactor core as useful_served) and is a
// line-protocol client of one replica per shard downstream.
//
//   useful_frontend --cluster h:p,h:p|h:p,h:p [--host H] [--port P]
//                   [--port-file PATH] [--threads N] [--reactor-threads N]
//                   [--reuseport] [--eject-failures N]
//                   [--probe-backoff-ms N] [--connect-timeout-ms N]
//                   [--io-timeout-ms N] [--trace-sample-rate N]
//                   [--slowlog-size N]
//   useful_frontend --cluster 127.0.0.1:7001,127.0.0.1:7002\|127.0.0.1:7003
//
// --cluster is S shards split by '|' (or ';' — shell-friendlier), each
// shard R replicas split by ',' in failover preference order. ROUTE and
// ESTIMATE scatter to every shard and merge the partial rankings
// bit-identically to a single useful_served holding all representatives;
// STATS/METRICS add cluster health (stale_shards, per-shard live
// replicas, per-shard round-trip histograms) and aggregated downstream
// counters; RELOAD fans to every replica. When a whole shard is
// unreachable, replies carry a DEGRADED token on the OK header instead
// of failing. A replica that fails --eject-failures times in a row is
// ejected and re-probed after a doubling --probe-backoff-ms; an
// all-ejected shard is still probed, so a restarted shard recovers on
// the next request.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "cluster/frontend.h"
#include "cluster/topology.h"
#include "service/server.h"

namespace {
useful::service::Server* g_server = nullptr;

void HandleSigint(int) {
  if (g_server != nullptr) g_server->RequestStop();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  service::ServerOptions server_options;
  cluster::FrontendOptions frontend_options;
  std::string cluster_spec;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cluster") == 0) {
      cluster_spec = need_value("--cluster");
    } else if (std::strcmp(argv[i], "--host") == 0) {
      server_options.host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      server_options.port = static_cast<std::uint16_t>(
          std::strtoul(need_value("--port"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = need_value("--port-file");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      server_options.threads =
          std::strtoul(need_value("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reactor-threads") == 0) {
      server_options.reactor_threads =
          std::strtoul(need_value("--reactor-threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reuseport") == 0) {
      server_options.reuseport = true;
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      server_options.backlog = static_cast<int>(
          std::strtol(need_value("--backlog"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--eject-failures") == 0) {
      frontend_options.eject_failures = static_cast<int>(
          std::strtol(need_value("--eject-failures"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--probe-backoff-ms") == 0) {
      frontend_options.probe_backoff_ms = static_cast<int>(
          std::strtol(need_value("--probe-backoff-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--connect-timeout-ms") == 0) {
      frontend_options.tcp.connect_timeout_ms = static_cast<int>(
          std::strtol(need_value("--connect-timeout-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0) {
      frontend_options.tcp.io_timeout_ms = static_cast<int>(
          std::strtol(need_value("--io-timeout-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace-sample-rate") == 0) {
      frontend_options.trace_sample_rate = static_cast<std::uint32_t>(
          std::strtoul(need_value("--trace-sample-rate"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--slowlog-size") == 0) {
      frontend_options.slowlog_size =
          std::strtoul(need_value("--slowlog-size"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (cluster_spec.empty()) {
    std::fprintf(stderr,
                 "usage: useful_frontend --cluster h:p,h:p|h:p,h:p "
                 "[--host H] [--port P] [--port-file PATH] [--threads N] "
                 "[--reactor-threads N] [--reuseport] [--backlog N] "
                 "[--eject-failures N] [--probe-backoff-ms N] "
                 "[--connect-timeout-ms N] [--io-timeout-ms N] "
                 "[--trace-sample-rate N] [--slowlog-size N]\n");
    return 2;
  }

  auto spec = cluster::ParseClusterSpec(cluster_spec);
  if (!spec.ok()) {
    std::fprintf(stderr, "--cluster: %s\n",
                 spec.status().ToString().c_str());
    return 2;
  }
  std::printf("fronting %zu shards / %zu replicas\n",
              spec.value().num_shards(), spec.value().num_replicas());

  cluster::Frontend frontend(std::move(spec).value(), frontend_options);
  service::Server server(&frontend, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);

  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);  // scripts scrape the port from a pipe

  if (!port_file.empty()) {
    // Write-then-rename: a reader polling for the file can never observe
    // a partial write, unlike scraping the (buffered) log stream.
    std::string tmp = port_file + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
      if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
        std::fprintf(stderr, "cannot publish port file %s\n",
                     port_file.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "cannot write port file %s\n", tmp.c_str());
      return 1;
    }
  }

  if (Status s = server.Serve(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shut down cleanly\n");
  return 0;
}
