#!/bin/sh
# Bounded loadgen smoke, run by ctest (smoke + tsan labels).
#
#   served_loadgen.sh <useful_served> <useful_client> <useful_loadgen>
#                     <rep0> <rep1> <workdir>
#
# Boots one useful_served over both smoke representatives and replays a
# short open-loop Zipfian slice of corpusgen's query log against it:
#
#   - the run must complete with zero ERR replies and zero transport
#     errors (loadgen exits 0);
#   - every request must be answered: replies == sent == --queries;
#   - the server's STATS must account for the full trace, and the
#     Zipfian repeats must have produced real cache hits;
#   - the JSON report must carry the percentile rows bench_serving.sh
#     folds into BENCH_serving.json.
#
# Sizes are modest (6k requests at 600 qps) because the tsan CI lane
# runs this under a ~10x slowdown; bench/bench_serving.sh is where the
# million-query run lives.
set -e

SERVED=$1
CLIENT=$2
LOADGEN=$3
REP0=$4
REP1=$5
DIR=$6

LOG="$DIR/loadgen_served.out"
PORT_FILE="$DIR/loadgen_served.port"
JSON="$DIR/loadgen_smoke.json"
OUT="$DIR/loadgen_smoke.out"
rm -f "$LOG" "$PORT_FILE" "$JSON" "$OUT"

fail() {
  echo "FAIL: $1" >&2
  [ -f "$LOG" ] && { echo "--- $LOG" >&2; cat "$LOG" >&2; }
  [ -f "$OUT" ] && { echo "--- $OUT" >&2; cat "$OUT" >&2; }
  kill "$SERVED_PID" 2>/dev/null || true
  exit 1
}

"$SERVED" --port 0 --port-file "$PORT_FILE" --threads 2 \
          --reactor-threads 1 "$REP0" "$REP1" > "$LOG" 2>&1 &
SERVED_PID=$!

i=0
while [ ! -f "$PORT_FILE" ]; do
  kill -0 "$SERVED_PID" 2>/dev/null || fail "server died before publishing"
  [ $i -lt 150 ] || fail "server never published a port"
  sleep 0.1
  i=$((i + 1))
done
PORT=$(cat "$PORT_FILE")

"$LOADGEN" --port "$PORT" --connections 2 --qps 600 --queries 6000 \
           --distinct 128 --queries-file "$DIR/queries.tsv" \
           --seed 7 --json "$JSON" --tag smoke > "$OUT" 2>&1 \
  || fail "loadgen exited nonzero (ERR replies or transport error)"

grep -q 'sent=6000 replies=6000 errors=0' "$OUT" \
  || fail "trace not fully answered: $(head -1 "$OUT")"
grep -q '"p99_us"' "$JSON" || fail "JSON report missing percentile rows"

STATS=$("$CLIENT" --port "$PORT" STATS)
REQUESTS=$(echo "$STATS" | awk '$1 == "requests_total" {print $2}')
[ "${REQUESTS:-0}" -ge 6000 ] \
  || fail "server STATS requests_total=$REQUESTS, expected >= 6000"
HITS=$(echo "$STATS" | awk '$1 == "cache_hits" {print $2}')
[ "${HITS:-0}" -gt 0 ] || fail "Zipfian trace produced no cache hits"

printf 'QUIT\n' | "$CLIENT" --port "$PORT" > /dev/null
wait "$SERVED_PID"
grep -q 'shut down cleanly' "$LOG" || fail "server exit was not clean"
echo "loadgen smoke ok: 6000 open-loop requests, 0 errors, hits=$HITS"
