// useful_route: the broker side. Loads representative files, reads queries
// from stdin (one per line), and prints the engines each query should be
// routed to under a chosen estimator and threshold — without touching any
// document data, exactly as the paper's metasearch engine operates.
//
//   useful_route [--estimator NAME] [--threshold T] [--topk K]
//                [--threads N] <rep>...
//   echo "fox dog" | useful_route --threshold 0.2 a.rep b.rep
//
// --threads parallelizes per-query engine ranking across the registered
// representatives (default: hardware concurrency; 1 = the serial path;
// rankings are bit-identical at any setting).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "broker/metasearcher.h"
#include "broker/selection_policy.h"
#include "estimate/registry.h"
#include "represent/serialize.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace useful;
  std::string estimator_name = "subrange";
  double threshold = 0.2;
  std::size_t topk = 0;     // 0: paper rule only
  std::size_t threads = 0;  // 0: hardware concurrency
  std::vector<std::string> rep_paths;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--estimator") == 0) {
      estimator_name = need_value("--estimator");
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      threshold = std::strtod(need_value("--threshold"), nullptr);
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      topk = std::strtoul(need_value("--topk"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::strtoul(need_value("--threads"), nullptr, 10);
    } else {
      rep_paths.push_back(argv[i]);
    }
  }
  if (rep_paths.empty()) {
    std::fprintf(stderr,
                 "usage: useful_route [--estimator NAME] [--threshold T] "
                 "[--topk K] [--threads N] <rep-file>...\n");
    return 2;
  }

  auto estimator = estimate::MakeEstimator(estimator_name);
  if (!estimator.ok()) {
    std::fprintf(stderr, "%s\nregistered estimators: %s (plus the "
                 "subrange-k<N> pattern)\n",
                 estimator.status().ToString().c_str(),
                 Join(estimate::KnownEstimators(), ", ").c_str());
    return 2;
  }

  text::Analyzer analyzer;
  broker::Metasearcher broker(&analyzer);
  broker.SetParallelism(threads);
  for (const std::string& path : rep_paths) {
    auto rep = represent::LoadRepresentative(path);
    if (!rep.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   rep.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: engine \"%s\", %zu terms, n=%zu\n", path.c_str(),
                rep.value().engine_name().c_str(), rep.value().num_terms(),
                rep.value().num_docs());
    if (Status s = broker.RegisterRepresentative(std::move(rep).value());
        !s.ok()) {
      std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("routing with estimator=%s threshold=%.3f%s\n\n",
              estimator_name.c_str(), threshold,
              topk > 0 ? " (top-k capped)" : "");

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ir::Query q = ir::ParseQuery(analyzer, line);
    if (q.empty()) {
      std::printf("%s -> (no content terms)\n", line.c_str());
      continue;
    }
    auto ranked = broker.RankEngines(q, threshold, *estimator.value());
    std::vector<broker::EngineSelection> selected;
    if (topk > 0) {
      selected = broker::TopKPolicy(topk).Apply(std::move(ranked));
    } else {
      selected = broker::ThresholdPolicy().Apply(std::move(ranked));
    }
    std::printf("%s ->", line.c_str());
    if (selected.empty()) std::printf(" (no useful engine)");
    for (const broker::EngineSelection& sel : selected) {
      std::printf(" %s(NoDoc~%.1f,AvgSim~%.3f)", sel.engine.c_str(),
                  sel.estimate.no_doc, sel.estimate.avg_sim);
    }
    std::printf("\n");
  }
  return 0;
}
