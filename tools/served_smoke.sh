#!/bin/sh
# End-to-end socket smoke test for the serving layer, run by ctest.
#
#   served_smoke.sh <useful_served> <useful_client> <rep0> <rep1> <workdir>
#
# Spawns useful_served on an ephemeral port (--port 0) with a --port-file
# handshake (write-then-rename, so a partial port number is never read),
# drives ROUTE (twice, so the second hits the query cache), STATS, and
# QUIT through useful_client over TCP, asserts the cache hit is visible in
# STATS, and verifies the server exits cleanly after QUIT.
set -e

SERVED=$1
CLIENT=$2
REP0=$3
REP1=$4
DIR=$5

OUT="$DIR/served_smoke.out"
PORT_FILE="$DIR/served_smoke.port"
rm -f "$OUT" "$PORT_FILE"

"$SERVED" --port 0 --port-file "$PORT_FILE" "$REP0" "$REP1" > "$OUT" 2>&1 &
SERVER_PID=$!

PORT=
i=0
while [ $i -lt 100 ]; do
  if [ -f "$PORT_FILE" ]; then
    PORT=$(cat "$PORT_FILE")
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died before publishing a port:"
    cat "$OUT"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$PORT" ]; then
  echo "server never published a port:"
  cat "$OUT"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
fi

REPLY=$(printf 'ROUTE subrange 0.15 0 fox dog\nROUTE subrange 0.15 0 fox dog\nSTATS\nQUIT\n' | "$CLIENT" --port "$PORT")
echo "$REPLY"

# Cache entries are per (engine, query); both engines hit on the repeat.
echo "$REPLY" | grep -q '^cache_hits 2$' || {
  echo "expected the repeated ROUTE to hit the cache (cache_hits 2)"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}
echo "$REPLY" | grep -q '^cache_misses 2$' || {
  echo "expected exactly one cache miss per engine"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

# QUIT must shut the server down cleanly (exit 0).
wait "$SERVER_PID"
grep -q 'shut down cleanly' "$OUT"
