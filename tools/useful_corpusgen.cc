// useful_corpusgen: materializes the synthetic testbed to disk — the 53
// newsgroup collections (TREC-like tagged text), the D1/D2/D3 databases,
// and the 6,234-query log — so external tooling (or a re-run with real
// data swapped in) can consume the exact experimental inputs.
//
//   useful_corpusgen <output-dir> [--groups N] [--queries N] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "corpus/io.h"
#include "corpus/newsgroup_sim.h"
#include "corpus/query_log.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: useful_corpusgen <output-dir> [--groups N] "
               "[--queries N] [--seed S]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::filesystem::path out_dir = argv[1];
  corpus::NewsgroupSimOptions sim_opts;
  corpus::QueryLogOptions query_opts;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--groups") == 0) {
      sim_opts.num_groups = std::strtoul(need_value("--groups"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      query_opts.num_queries =
          std::strtoul(need_value("--queries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      sim_opts.seed = std::strtoull(need_value("--seed"), nullptr, 10);
      query_opts.seed = sim_opts.seed + 1;
    } else {
      Usage();
      return 2;
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::printf("generating %zu newsgroups (seed %llu)...\n",
              sim_opts.num_groups,
              static_cast<unsigned long long>(sim_opts.seed));
  corpus::NewsgroupSimulator sim(sim_opts);

  auto save = [&](const corpus::Collection& c) {
    std::string path = (out_dir / (c.name() + ".trec")).string();
    Status s = corpus::SaveCollection(c, path);
    if (!s.ok()) {
      std::fprintf(stderr, "save %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    std::printf("  %-12s %6zu docs -> %s\n", c.name().c_str(), c.size(),
                path.c_str());
  };
  for (const corpus::Collection& group : sim.groups()) save(group);
  if (sim.groups().size() >= 26) {
    save(sim.BuildD1());
    save(sim.BuildD2());
    save(sim.BuildD3());
  }

  std::vector<corpus::Query> queries =
      corpus::QueryLogGenerator(query_opts).Generate(sim);
  std::string qpath = (out_dir / "queries.tsv").string();
  if (Status s = corpus::SaveQueryLog(queries, qpath); !s.ok()) {
    std::fprintf(stderr, "save queries: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  %zu queries -> %s\n", queries.size(), qpath.c_str());
  return 0;
}
