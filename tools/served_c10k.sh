#!/bin/sh
# C10K smoke test for the epoll reactor core, run by ctest.
#
#   served_c10k.sh <useful_served> <useful_client> <useful_faultclient>
#                  <rep0> <rep1> <workdir>
#
# Spawns useful_served with 2 reactor threads and a 2-worker estimation
# offload pool, opens 1000+ concurrent idle keep-alive connections, and
# asserts that (a) every one of them is accepted and HELD — none shed,
# none dropped — and (b) while they all sit idle, a fresh client
# pipelining 200 requests in one write gets 200 in-order OK answers.
# Under the old thread-per-connection core this scenario needed a
# thousand threads; under the reactor core it needs two.
set -e

SERVED=$1
CLIENT=$2
FAULT=$3
REP0=$4
REP1=$5
DIR=$6

CONNS=1100
PIPELINE=200

OUT="$DIR/served_c10k.out"
PORT_FILE="$DIR/served_c10k.port"
rm -f "$OUT" "$PORT_FILE"

# Generous idle budget (the fleet must survive the whole test) and limits
# above the fleet size, so any shed or drop is a server bug, not policy.
# The listen backlog must absorb the whole connect burst: on a small
# machine the client can fire hundreds of connects before the acceptor
# thread is scheduled, and an overflowed backlog turns into 1-second SYN
# retransmit stalls rather than sheds.
"$SERVED" --port 0 --port-file "$PORT_FILE" \
  --threads 2 --reactor-threads 2 --backlog 2048 \
  --idle-timeout-ms 60000 --max-connections 2000 --max-accept-queue 2000 \
  "$REP0" "$REP1" > "$OUT" 2>&1 &
SERVER_PID=$!

PORT=
i=0
while [ $i -lt 100 ]; do
  if [ -f "$PORT_FILE" ]; then
    PORT=$(cat "$PORT_FILE")
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died before publishing a port:"
    cat "$OUT"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$PORT" ]; then
  echo "server never published a port:"
  cat "$OUT"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
fi

fail() {
  echo "$1"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

FLOOD_OUT=$("$FAULT" --port "$PORT" --mode flood --count "$CONNS" \
  --pipeline "$PIPELINE" --timeout-ms 30000) ||
  fail "c10k hold failed: $FLOOD_OUT"
echo "$FLOOD_OUT"

# STATS must agree: every connection was opened (held fleet + probe), and
# nothing was shed; the reactor counters prove the epoll core served it.
REPLY=$(printf 'STATS\nQUIT\n' | "$CLIENT" --port "$PORT" --timeout-ms 10000)
echo "$REPLY" | grep -E '^(conns_|epoll_|dispatch)' || true

OPENED=$(echo "$REPLY" | awk '/^conns_opened /{print $2}')
SHED=$(echo "$REPLY" | awk '/^conns_shed /{print $2}')
[ -n "$OPENED" ] && [ "$OPENED" -ge "$CONNS" ] ||
  fail "expected conns_opened >= $CONNS, got '$OPENED'"
[ "$SHED" = "0" ] || fail "expected zero sheds, got '$SHED'"
echo "$REPLY" | grep -Eq '^epoll_wakeups [1-9]' ||
  fail "expected a nonzero epoll_wakeups counter"
echo "$REPLY" | grep -Eq '^dispatched_lines [1-9]' ||
  fail "expected a nonzero dispatched_lines counter"

# QUIT must still shut the server down cleanly (exit 0) with the idle
# fleet draining, not hanging, the reactors.
wait "$SERVER_PID"
grep -q 'shut down cleanly' "$OUT"
