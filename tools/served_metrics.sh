#!/bin/sh
# End-to-end observability smoke test for the serving layer, run by ctest.
#
#   served_metrics.sh <useful_served> <useful_client> <rep0> <rep1> <workdir>
#
# Spawns useful_served with every-request tracing (--trace-sample-rate 1),
# drives ROUTE traffic, then scrapes METRICS twice and SLOWLOG once via
# useful_client's one-shot mode. Asserts the exposition is well-formed
# (every sample line is "<series> <number>"), that counters are monotone
# across the two scrapes, and that the slow-query log retained the traffic.
set -e

SERVED=$1
CLIENT=$2
REP0=$3
REP1=$4
DIR=$5

OUT="$DIR/served_metrics.out"
PORT_FILE="$DIR/served_metrics.port"
rm -f "$OUT" "$PORT_FILE"

"$SERVED" --port 0 --port-file "$PORT_FILE" \
  --trace-sample-rate 1 --slowlog-size 8 "$REP0" "$REP1" > "$OUT" 2>&1 &
SERVER_PID=$!

PORT=
i=0
while [ $i -lt 100 ]; do
  if [ -f "$PORT_FILE" ]; then
    PORT=$(cat "$PORT_FILE")
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died before publishing a port:"
    cat "$OUT"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$PORT" ]; then
  echo "server never published a port:"
  cat "$OUT"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
fi

fail() {
  echo "$1"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

# Checks one scrape for Prometheus text-exposition shape: comments start
# "# ", every other line is "<series> <numeric value>".
check_exposition() {
  echo "$1" | awk '
    /^# / { next }
    NF != 2 { print "bad sample line: " $0; exit 1 }
    $2 !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ {
      print "non-numeric value: " $0; exit 1
    }
  ' || fail "malformed METRICS exposition"
}

# Extracts one series value from a scrape.
series() {
  echo "$1" | awk -v name="$2" '$1 == name { print $2 }'
}

printf 'ROUTE subrange 0.15 0 fox dog\nROUTE subrange 0.15 0 fox dog\nESTIMATE basic 0.2 fox\n' \
  | "$CLIENT" --port "$PORT" > /dev/null

SCRAPE1=$("$CLIENT" --port "$PORT" METRICS)
check_exposition "$SCRAPE1"
echo "$SCRAPE1" | grep -q '^# TYPE useful_requests_total counter$' \
  || fail "missing TYPE header for useful_requests_total"
echo "$SCRAPE1" | grep -q '^useful_stage_latency_seconds_bucket{stage="estimate",le="' \
  || fail "missing per-stage latency buckets"
REQ1=$(series "$SCRAPE1" useful_requests_total)
HITS1=$(series "$SCRAPE1" useful_cache_hits_total)
# Per-engine cache entries: the repeated ROUTE hits once per engine.
[ "$HITS1" = "2" ] || fail "expected the repeated ROUTE to hit the cache, got '$HITS1'"

printf 'ROUTE subrange 0.15 0 quantum physics\n' | "$CLIENT" --port "$PORT" > /dev/null

SCRAPE2=$("$CLIENT" --port "$PORT" METRICS)
check_exposition "$SCRAPE2"
REQ2=$(series "$SCRAPE2" useful_requests_total)
# Counters must be monotone, and the delta covers the first METRICS scrape
# plus the ROUTE in between.
[ "$REQ2" -gt "$REQ1" ] || fail "useful_requests_total not monotone: $REQ1 -> $REQ2"

SLOWLOG=$("$CLIENT" --port "$PORT" SLOWLOG 3)
[ -n "$SLOWLOG" ] || fail "SLOWLOG returned nothing with tracing at rate 1"
echo "$SLOWLOG" | awk '$0 !~ /^total_us=/ { print "bad slowlog line: " $0; exit 1 }' \
  || fail "malformed SLOWLOG line"
echo "$SLOWLOG" | grep -q 'query=' || fail "slowlog entries carry no query"

printf 'QUIT\n' | "$CLIENT" --port "$PORT" > /dev/null

# QUIT must shut the server down cleanly (exit 0).
wait "$SERVER_PID"
grep -q 'shut down cleanly' "$OUT"
