// useful_repgen: builds the binary representative file for a collection —
// the artifact a local search engine would ship to the metasearch broker.
//
//   useful_repgen <collection.trec> <out.rep> [--triplet] [--quantize]
//                 [--save-index <out.idx>]
//   useful_repgen <collection.trec>... <out.urpz> --pack [--triplet]
//
// With --pack, every input collection becomes one engine inside a single
// mmap-able URPZ store (always byte-quantized; see src/represent/store.h).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/io.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/quantized.h"
#include "represent/serialize.h"
#include "represent/store.h"
#include "util/string_util.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: useful_repgen <collection.trec> <out.rep> "
               "[--triplet] [--quantize] [--save-index <out.idx>]\n"
               "       useful_repgen <collection.trec>... <out.urpz> "
               "--pack [--triplet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  represent::RepresentativeKind kind =
      represent::RepresentativeKind::kQuadruplet;
  bool quantize = false;
  bool pack = false;
  std::string index_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--triplet") == 0) {
      kind = represent::RepresentativeKind::kTriplet;
    } else if (std::strcmp(argv[i], "--quantize") == 0) {
      quantize = true;
    } else if (std::strcmp(argv[i], "--pack") == 0) {
      pack = true;
    } else if (std::strcmp(argv[i], "--save-index") == 0 && i + 1 < argc) {
      index_path = argv[++i];
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2) return Usage();
  if (!pack && positional.size() != 2) return Usage();
  if (!index_path.empty() && positional.size() != 2) {
    std::fprintf(stderr, "--save-index needs exactly one collection\n");
    return 2;
  }
  const std::string out_path = positional.back();
  positional.pop_back();

  text::Analyzer analyzer;
  // Built representatives; for --pack they all feed one EncodeStore call.
  std::vector<represent::Representative> reps;
  reps.reserve(positional.size());
  for (const std::string& input : positional) {
    auto collection = corpus::LoadCollection(input);
    if (!collection.ok()) {
      std::fprintf(stderr, "load: %s\n",
                   collection.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %zu docs, %s of text\n",
                collection.value().name().c_str(), collection.value().size(),
                HumanBytes(collection.value().TextBytes()).c_str());

    ir::SearchEngine engine(collection.value().name(), &analyzer);
    if (Status s = engine.AddCollection(collection.value()); !s.ok()) {
      std::fprintf(stderr, "index: %s\n", s.ToString().c_str());
      return 1;
    }
    if (Status s = engine.Finalize(); !s.ok()) {
      std::fprintf(stderr, "finalize: %s\n", s.ToString().c_str());
      return 1;
    }
    if (!index_path.empty()) {
      if (Status s = engine.SaveToFile(index_path); !s.ok()) {
        std::fprintf(stderr, "save index: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote index to %s\n", index_path.c_str());
    }

    auto rep = represent::BuildRepresentative(engine, kind);
    if (!rep.ok()) {
      std::fprintf(stderr, "build: %s\n", rep.status().ToString().c_str());
      return 1;
    }
    reps.push_back(std::move(rep).value());
  }

  if (pack) {
    std::vector<const represent::Representative*> ptrs;
    ptrs.reserve(reps.size());
    for (const represent::Representative& r : reps) ptrs.push_back(&r);
    if (Status s = represent::PackStoreToFile(ptrs, out_path); !s.ok()) {
      std::fprintf(stderr, "pack: %s\n", s.ToString().c_str());
      return 1;
    }
    std::size_t total_terms = 0;
    for (const represent::Representative& r : reps) {
      total_terms += r.num_terms();
    }
    std::printf("packed %s: %zu engines, %zu terms\n", out_path.c_str(),
                reps.size(), total_terms);
    return 0;
  }

  represent::Representative final_rep = std::move(reps.front());
  if (quantize) {
    auto q = represent::QuantizeRepresentative(final_rep);
    if (!q.ok()) {
      std::fprintf(stderr, "quantize: %s\n", q.status().ToString().c_str());
      return 1;
    }
    final_rep = std::move(q).value().representative;
  }

  if (Status s = represent::SaveRepresentative(final_rep, out_path);
      !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %zu terms, n=%zu, %s (paper accounting: %s%s)\n",
      out_path.c_str(), final_rep.num_terms(), final_rep.num_docs(),
      kind == represent::RepresentativeKind::kQuadruplet ? "quadruplets"
                                                         : "triplets",
      HumanBytes(final_rep.PaperBytes(quantize ? 1 : 4)).c_str(),
      quantize ? ", one-byte numbers" : "");
  return 0;
}
