// useful_repgen: builds the binary representative file for a collection —
// the artifact a local search engine would ship to the metasearch broker.
//
//   useful_repgen <collection.trec> <out.rep> [--triplet] [--quantize]
//                 [--save-index <out.idx>]
#include <cstdio>
#include <cstring>

#include "corpus/io.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/quantized.h"
#include "represent/serialize.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace useful;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: useful_repgen <collection.trec> <out.rep> "
                 "[--triplet] [--quantize]\n");
    return 2;
  }
  represent::RepresentativeKind kind =
      represent::RepresentativeKind::kQuadruplet;
  bool quantize = false;
  std::string index_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--triplet") == 0) {
      kind = represent::RepresentativeKind::kTriplet;
    } else if (std::strcmp(argv[i], "--quantize") == 0) {
      quantize = true;
    } else if (std::strcmp(argv[i], "--save-index") == 0 && i + 1 < argc) {
      index_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  auto collection = corpus::LoadCollection(argv[1]);
  if (!collection.ok()) {
    std::fprintf(stderr, "load: %s\n",
                 collection.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %zu docs, %s of text\n",
              collection.value().name().c_str(), collection.value().size(),
              HumanBytes(collection.value().TextBytes()).c_str());

  text::Analyzer analyzer;
  ir::SearchEngine engine(collection.value().name(), &analyzer);
  if (Status s = engine.AddCollection(collection.value()); !s.ok()) {
    std::fprintf(stderr, "index: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = engine.Finalize(); !s.ok()) {
    std::fprintf(stderr, "finalize: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!index_path.empty()) {
    if (Status s = engine.SaveToFile(index_path); !s.ok()) {
      std::fprintf(stderr, "save index: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote index to %s\n", index_path.c_str());
  }

  auto rep = represent::BuildRepresentative(engine, kind);
  if (!rep.ok()) {
    std::fprintf(stderr, "build: %s\n", rep.status().ToString().c_str());
    return 1;
  }
  represent::Representative final_rep = std::move(rep).value();
  if (quantize) {
    auto q = represent::QuantizeRepresentative(final_rep);
    if (!q.ok()) {
      std::fprintf(stderr, "quantize: %s\n", q.status().ToString().c_str());
      return 1;
    }
    final_rep = std::move(q).value().representative;
  }

  if (Status s = represent::SaveRepresentative(final_rep, argv[2]); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %zu terms, n=%zu, %s (paper accounting: %s%s)\n", argv[2],
      final_rep.num_terms(), final_rep.num_docs(),
      kind == represent::RepresentativeKind::kQuadruplet ? "quadruplets"
                                                         : "triplets",
      HumanBytes(final_rep.PaperBytes(quantize ? 1 : 4)).c_str(),
      quantize ? ", one-byte numbers" : "");
  return 0;
}
