#!/bin/sh
# End-to-end fault-injection smoke test for the serving layer's
# hardening, run by ctest.
#
#   served_faults.sh <useful_served> <useful_client> <useful_faultclient>
#                    <rep0> <rep1> <workdir>
#
# Spawns useful_served with tight timeouts and low connection limits,
# then drives every fault path through useful_faultclient: a half-open
# peer (idle timeout), a slow-loris writer (request timeout), a
# mid-request disconnect, and a connection flood (overload shed). Finally
# asserts via STATS that the corresponding counters are nonzero and that
# a well-behaved client is still served afterwards.
set -e

SERVED=$1
CLIENT=$2
FAULT=$3
REP0=$4
REP1=$5
DIR=$6

OUT="$DIR/served_faults.out"
PORT_FILE="$DIR/served_faults.port"
rm -f "$OUT" "$PORT_FILE"

"$SERVED" --port 0 --port-file "$PORT_FILE" --threads 2 \
  --idle-timeout-ms 300 --request-timeout-ms 300 --write-timeout-ms 1000 \
  --max-connections 4 --max-accept-queue 2 \
  "$REP0" "$REP1" > "$OUT" 2>&1 &
SERVER_PID=$!

PORT=
i=0
while [ $i -lt 100 ]; do
  if [ -f "$PORT_FILE" ]; then
    PORT=$(cat "$PORT_FILE")
    break
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died before publishing a port:"
    cat "$OUT"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$PORT" ]; then
  echo "server never published a port:"
  cat "$OUT"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
fi

fail() {
  echo "$1"
  kill "$SERVER_PID" 2>/dev/null || true
  exit 1
}

# Idle peer: the server must hang up on us (timeout 300 ms, wait <= 10 s).
"$FAULT" --port "$PORT" --mode halfopen --timeout-ms 10000 ||
  fail "halfopen peer was never disconnected"

# Slow-loris: one byte every 20 ms, never a newline — cut off mid-write.
"$FAULT" --port "$PORT" --mode slowloris --delay-ms 20 --timeout-ms 10000 ||
  fail "slow-loris writer was never cut off"

# Mid-request disconnect: must not disturb the server.
"$FAULT" --port "$PORT" --mode midclose ||
  fail "midclose fault failed"

# Flood: 12 idle connections against max-connections 4 — some must be
# shed with an overloaded ERR instead of queueing.
"$FAULT" --port "$PORT" --mode flood --count 12 --timeout-ms 10000 ||
  fail "connection flood was never shed"

# A polite client still gets served, and STATS shows each defense fired.
REPLY=$(printf 'ROUTE subrange 0.15 0 fox dog\nSTATS\nQUIT\n' |
  "$CLIENT" --port "$PORT" --timeout-ms 10000)
echo "$REPLY"

echo "$REPLY" | grep -Eq '^conns_idle_timeout [1-9]' ||
  fail "expected a nonzero conns_idle_timeout counter"
echo "$REPLY" | grep -Eq '^conns_request_timeout [1-9]' ||
  fail "expected a nonzero conns_request_timeout counter"
echo "$REPLY" | grep -Eq '^conns_shed [1-9]' ||
  fail "expected a nonzero conns_shed counter"

# QUIT must still shut the server down cleanly (exit 0).
wait "$SERVER_PID"
grep -q 'shut down cleanly' "$OUT"
