// useful_served: the broker as a long-running metasearch service. Loads
// representative files, listens on a TCP port, and answers the line
// protocol (ROUTE / ESTIMATE / STATS / METRICS / SLOWLOG / RELOAD / QUIT)
// until a QUIT request or SIGINT winds it down gracefully.
//
//   useful_served [--host H] [--port P] [--port-file PATH] [--threads N]
//                 [--reactor-threads N] [--reuseport] [--cache-entries N]
//                 [--cache-bytes N] [--idle-timeout-ms N]
//                 [--request-timeout-ms N] [--write-timeout-ms N]
//                 [--max-connections N] [--max-accept-queue N]
//                 [--trace-sample-rate N] [--slowlog-size N]
//                 [--num-shards N] [--shard-index I] <rep>...
//   useful_served --port 7979 a.rep b.rep
//
// --reuseport opens one SO_REUSEPORT listen socket + acceptor thread per
// reactor so accepts scale with reactors (shard processes under a
// connection-heavy front-end tier want this).
// --reactor-threads N sizes the epoll event-loop fleet (default 2);
// --threads N sizes the estimation offload pool that executes requests
// (0 = hardware concurrency). Connections are state machines on the
// reactors, so thousands of idle keep-alive peers are fine with two
// reactor threads — size --threads to the estimation work instead.
//
// --trace-sample-rate N traces one request in N (default 256; 0 disables
// tracing, 1 traces every request); sampled traces feed the per-stage
// histograms that METRICS exposes and the ring --slowlog-size sizes,
// dumped by SLOWLOG.
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// announced on stdout as "listening on H:P" before serving starts, so
// scripts can scrape it. --port-file PATH additionally publishes the bare
// port number to PATH via write-then-rename — the race-free handshake the
// ctest smoke scripts use (a polled log line can be half-flushed; a
// renamed file cannot). ROUTE results are identical to useful_route on
// the same representatives; repeated queries are served from the query
// cache (see STATS), and RELOAD re-reads the representative files without
// dropping in-flight requests.
//
// The timeout/limit flags map 1:1 onto ServerOptions: idle peers and
// slow-loris writers are disconnected, stuck readers are dropped after
// the write timeout, and connections beyond --max-connections (or beyond
// the accept queue bound) are shed with "ERR Unavailable: overloaded".
// Pass 0 to disable any individual limit.
//
// --num-shards N --shard-index I declare this process's slice of a
// cluster: a live ADD only registers engines that hash to shard I, so
// an ADD fanned to every shard by the front-end lands each engine on
// exactly one owner. Startup/RELOAD/UPDATE stay unfiltered — they act
// on whatever the operator pointed this process at.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "service/server.h"
#include "service/service.h"
#include "text/analyzer.h"

namespace {
useful::service::Server* g_server = nullptr;

void HandleSigint(int) {
  // RequestStop is one atomic store: signal-safe. Serve() notices within
  // its poll interval and drains.
  if (g_server != nullptr) g_server->RequestStop();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  service::ServerOptions server_options;
  service::ServiceOptions service_options;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      server_options.host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      server_options.port = static_cast<std::uint16_t>(
          std::strtoul(need_value("--port"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = need_value("--port-file");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      server_options.threads =
          std::strtoul(need_value("--threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--reactor-threads") == 0) {
      server_options.reactor_threads =
          std::strtoul(need_value("--reactor-threads"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      server_options.backlog = static_cast<int>(
          std::strtol(need_value("--backlog"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--reuseport") == 0) {
      server_options.reuseport = true;
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      server_options.idle_timeout_ms = static_cast<int>(
          std::strtol(need_value("--idle-timeout-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--request-timeout-ms") == 0) {
      server_options.request_timeout_ms = static_cast<int>(
          std::strtol(need_value("--request-timeout-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--write-timeout-ms") == 0) {
      server_options.write_timeout_ms = static_cast<int>(
          std::strtol(need_value("--write-timeout-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-connections") == 0) {
      server_options.max_connections =
          std::strtoul(need_value("--max-connections"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-accept-queue") == 0) {
      server_options.max_accept_queue =
          std::strtoul(need_value("--max-accept-queue"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache-entries") == 0) {
      service_options.cache.max_entries =
          std::strtoul(need_value("--cache-entries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache-bytes") == 0) {
      service_options.cache.max_bytes =
          std::strtoul(need_value("--cache-bytes"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace-sample-rate") == 0) {
      service_options.trace_sample_rate = static_cast<std::uint32_t>(
          std::strtoul(need_value("--trace-sample-rate"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--slowlog-size") == 0) {
      service_options.slowlog_size =
          std::strtoul(need_value("--slowlog-size"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--num-shards") == 0) {
      service_options.num_shards =
          std::strtoul(need_value("--num-shards"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--shard-index") == 0) {
      service_options.shard_index =
          std::strtoul(need_value("--shard-index"), nullptr, 10);
    } else {
      service_options.representative_paths.push_back(argv[i]);
    }
  }
  if (service_options.representative_paths.empty()) {
    std::fprintf(stderr,
                 "usage: useful_served [--host H] [--port P] "
                 "[--port-file PATH] [--threads N] [--reactor-threads N] "
                 "[--reuseport] "
                 "[--backlog N] [--cache-entries N] [--cache-bytes N] "
                 "[--idle-timeout-ms N] [--request-timeout-ms N] "
                 "[--write-timeout-ms N] [--max-connections N] "
                 "[--max-accept-queue N] [--trace-sample-rate N] "
                 "[--slowlog-size N] [--num-shards N] [--shard-index I] "
                 "<rep-file>...\n");
    return 2;
  }

  text::Analyzer analyzer;
  auto service = service::Service::Create(&analyzer, service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %zu engines\n", service.value()->num_engines());

  service::Server server(service.value().get(), server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);

  std::printf("listening on %s:%u\n", server_options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);  // scripts scrape the port from a pipe

  if (!port_file.empty()) {
    // Write-then-rename: a reader polling for the file can never observe
    // a partial write, unlike scraping the (buffered) log stream.
    std::string tmp = port_file + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
      if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
        std::fprintf(stderr, "cannot publish port file %s\n",
                     port_file.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "cannot write port file %s\n", tmp.c_str());
      return 1;
    }
  }

  if (Status s = server.Serve(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shut down cleanly\n");
  return 0;
}
