// useful_client: line-protocol client for useful_served. Reads request
// lines from stdin, sends each to the server, and prints every response
// line (header and payload) to stdout — a transparent protocol echo that
// scripts can grep.
//
//   printf 'ROUTE subrange 0.2 0 fox dog\nSTATS\nQUIT\n' |
//       useful_client --port 7979
//
// One-shot mode: trailing positional arguments form a single request, and
// only the payload is printed (no "OK <n>" header) — made for piping
// METRICS into a Prometheus checker or grepping SLOWLOG:
//
//   useful_client --port 7979 METRICS
//   useful_client --port 7979 SLOWLOG 5
//
// Multi-host mode: --hosts a:p1,b:p2 names several servers (shards, or
// shards plus the cluster front-end); stdin request lines round-robin
// across them on persistent per-host connections, so one invocation can
// poke every member of a cluster. One-shot requests go to the first
// host. --host/--port remain the single-host spelling.
//
// --timeout-ms N bounds every socket send/recv (SO_SNDTIMEO/SO_RCVTIMEO),
// so a wedged or overloaded server fails the client instead of hanging
// it; the OK-header payload count is capped (service::kMaxPayloadLines),
// so a corrupt "OK 99999999999" header cannot make the client read
// forever. Exits 0 when every request got an OK response, 1 when any got
// an ERR or the connection failed mid-stream, 2 on usage/connect errors.
// In one-shot mode an ERR response is printed to stderr instead.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "service/protocol.h"

namespace {

/// Buffered line reads from a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one '\n'-terminated line (without the terminator). False on
  /// EOF/error before a full line arrived.
  bool ReadLine(std::string* line) {
    for (;;) {
      std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        *line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One lazily-connected persistent connection per target host.
struct HostConn {
  useful::cluster::Endpoint endpoint;
  int fd = -1;
  std::unique_ptr<LineReader> reader;
};

/// Connects `conn` if needed. Returns false (with a message) on failure.
bool EnsureConnected(HostConn* conn, unsigned long timeout_ms) {
  if (conn->fd >= 0) return true;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return false;
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(conn->endpoint.port);
  if (::inet_pton(AF_INET, conn->endpoint.host.c_str(), &addr.sin_addr) !=
      1) {
    std::fprintf(stderr, "bad host: %s\n", conn->endpoint.host.c_str());
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "connect %s: %s\n",
                 conn->endpoint.ToString().c_str(), std::strerror(errno));
    ::close(fd);
    return false;
  }
  conn->fd = fd;
  conn->reader = std::make_unique<LineReader>(fd);
  return true;
}

void CloseAll(std::vector<HostConn>* conns) {
  for (HostConn& conn : *conns) {
    if (conn.fd >= 0) ::close(conn.fd);
    conn.fd = -1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  std::string host = "127.0.0.1";
  unsigned long port = 0;
  unsigned long timeout_ms = 0;  // 0: no socket deadline
  std::string hosts_spec;
  std::string one_shot;  // positional tokens joined into one request

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::strtoul(need_value("--port"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--hosts") == 0) {
      hosts_spec = need_value("--hosts");
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      timeout_ms = std::strtoul(need_value("--timeout-ms"), nullptr, 10);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    } else {
      if (!one_shot.empty()) one_shot.push_back(' ');
      one_shot.append(argv[i]);
    }
  }

  std::vector<HostConn> conns;
  if (!hosts_spec.empty()) {
    // --hosts is a flat comma list: every entry is its own target (the
    // '|' shard grouping of a cluster spec has no meaning here).
    auto spec = cluster::ParseClusterSpec(hosts_spec);
    if (!spec.ok()) {
      std::fprintf(stderr, "--hosts: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    for (const auto& shard : spec.value().shards) {
      for (const auto& endpoint : shard.replicas) {
        conns.push_back(HostConn{endpoint, -1, nullptr});
      }
    }
  } else if (port > 0 && port <= 65535) {
    conns.push_back(HostConn{
        cluster::Endpoint{host, static_cast<std::uint16_t>(port)}, -1,
        nullptr});
  }
  if (conns.empty()) {
    std::fprintf(stderr,
                 "usage: useful_client [--host H] [--timeout-ms N] "
                 "(--port P | --hosts h:p,h:p) [request tokens...]\n");
    return 2;
  }

  if (!one_shot.empty()) {
    HostConn* conn = &conns[0];
    if (!EnsureConnected(conn, timeout_ms)) return 2;
    if (!SendAll(conn->fd, one_shot + "\n")) {
      std::fprintf(stderr, "send failed\n");
      CloseAll(&conns);
      return 1;
    }
    std::string header_line;
    if (!conn->reader->ReadLine(&header_line)) {
      std::fprintf(stderr, "connection closed before response\n");
      CloseAll(&conns);
      return 1;
    }
    auto header = service::ParseResponseHeader(header_line);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      CloseAll(&conns);
      return 1;
    }
    if (!header.value().ok) {
      std::fprintf(stderr, "ERR %s\n", header.value().error.c_str());
      CloseAll(&conns);
      return 1;
    }
    for (std::size_t i = 0; i < header.value().payload_lines; ++i) {
      std::string payload_line;
      if (!conn->reader->ReadLine(&payload_line)) {
        std::fprintf(stderr, "truncated response\n");
        CloseAll(&conns);
        return 1;
      }
      std::printf("%s\n", payload_line.c_str());
    }
    CloseAll(&conns);
    return 0;
  }

  bool any_error = false;
  std::string request;
  std::size_t next_host = 0;
  while (std::getline(std::cin, request)) {
    if (request.empty()) continue;
    HostConn* conn = &conns[next_host % conns.size()];
    ++next_host;
    if (!EnsureConnected(conn, timeout_ms)) {
      CloseAll(&conns);
      return conns.size() == 1 ? 2 : 1;
    }
    if (!SendAll(conn->fd, request + "\n")) {
      std::fprintf(stderr, "send failed\n");
      CloseAll(&conns);
      return 1;
    }
    std::string header_line;
    if (!conn->reader->ReadLine(&header_line)) {
      std::fprintf(stderr, "connection closed before response\n");
      CloseAll(&conns);
      return 1;
    }
    std::printf("%s\n", header_line.c_str());
    auto header = service::ParseResponseHeader(header_line);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      CloseAll(&conns);
      return 1;
    }
    if (!header.value().ok) {
      any_error = true;
      continue;
    }
    for (std::size_t i = 0; i < header.value().payload_lines; ++i) {
      std::string payload_line;
      if (!conn->reader->ReadLine(&payload_line)) {
        std::fprintf(stderr, "truncated response\n");
        CloseAll(&conns);
        return 1;
      }
      std::printf("%s\n", payload_line.c_str());
    }
  }
  CloseAll(&conns);
  return any_error ? 1 : 0;
}
