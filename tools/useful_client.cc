// useful_client: line-protocol client for useful_served. Reads request
// lines from stdin, sends each to the server, and prints every response
// line (header and payload) to stdout — a transparent protocol echo that
// scripts can grep.
//
//   printf 'ROUTE subrange 0.2 0 fox dog\nSTATS\nQUIT\n' |
//       useful_client --port 7979
//
// One-shot mode: trailing positional arguments form a single request, and
// only the payload is printed (no "OK <n>" header) — made for piping
// METRICS into a Prometheus checker or grepping SLOWLOG:
//
//   useful_client --port 7979 METRICS
//   useful_client --port 7979 SLOWLOG 5
//
// --timeout-ms N bounds every socket send/recv (SO_SNDTIMEO/SO_RCVTIMEO),
// so a wedged or overloaded server fails the client instead of hanging
// it; the OK-header payload count is capped (service::kMaxPayloadLines),
// so a corrupt "OK 99999999999" header cannot make the client read
// forever. Exits 0 when every request got an OK response, 1 when any got
// an ERR or the connection failed mid-stream, 2 on usage/connect errors.
// In one-shot mode an ERR response is printed to stderr instead.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "service/protocol.h"

namespace {

/// Buffered line reads from a socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads one '\n'-terminated line (without the terminator). False on
  /// EOF/error before a full line arrived.
  bool ReadLine(std::string* line) {
    for (;;) {
      std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        *line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

bool SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  std::string host = "127.0.0.1";
  unsigned long port = 0;
  unsigned long timeout_ms = 0;  // 0: no socket deadline
  std::string one_shot;  // positional tokens joined into one request

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::strtoul(need_value("--port"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      timeout_ms = std::strtoul(need_value("--timeout-ms"), nullptr, 10);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    } else {
      if (!one_shot.empty()) one_shot.push_back(' ');
      one_shot.append(argv[i]);
    }
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr,
                 "usage: useful_client [--host H] [--timeout-ms N] "
                 "--port P [request tokens...]\n");
    return 2;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 2;
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host: %s\n", host.c_str());
    ::close(fd);
    return 2;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    ::close(fd);
    return 2;
  }

  LineReader reader(fd);

  if (!one_shot.empty()) {
    if (!SendAll(fd, one_shot + "\n")) {
      std::fprintf(stderr, "send failed\n");
      ::close(fd);
      return 1;
    }
    std::string header_line;
    if (!reader.ReadLine(&header_line)) {
      std::fprintf(stderr, "connection closed before response\n");
      ::close(fd);
      return 1;
    }
    auto header = service::ParseResponseHeader(header_line);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      ::close(fd);
      return 1;
    }
    if (!header.value().ok) {
      std::fprintf(stderr, "ERR %s\n", header.value().error.c_str());
      ::close(fd);
      return 1;
    }
    for (std::size_t i = 0; i < header.value().payload_lines; ++i) {
      std::string payload_line;
      if (!reader.ReadLine(&payload_line)) {
        std::fprintf(stderr, "truncated response\n");
        ::close(fd);
        return 1;
      }
      std::printf("%s\n", payload_line.c_str());
    }
    ::close(fd);
    return 0;
  }

  bool any_error = false;
  std::string request;
  while (std::getline(std::cin, request)) {
    if (request.empty()) continue;
    if (!SendAll(fd, request + "\n")) {
      std::fprintf(stderr, "send failed\n");
      ::close(fd);
      return 1;
    }
    std::string header_line;
    if (!reader.ReadLine(&header_line)) {
      std::fprintf(stderr, "connection closed before response\n");
      ::close(fd);
      return 1;
    }
    std::printf("%s\n", header_line.c_str());
    auto header = service::ParseResponseHeader(header_line);
    if (!header.ok()) {
      std::fprintf(stderr, "%s\n", header.status().ToString().c_str());
      ::close(fd);
      return 1;
    }
    if (!header.value().ok) {
      any_error = true;
      continue;
    }
    for (std::size_t i = 0; i < header.value().payload_lines; ++i) {
      std::string payload_line;
      if (!reader.ReadLine(&payload_line)) {
        std::fprintf(stderr, "truncated response\n");
        ::close(fd);
        return 1;
      }
      std::printf("%s\n", payload_line.c_str());
    }
  }
  ::close(fd);
  return any_error ? 1 : 0;
}
