// useful_fuzz: the randomized correctness harness. For each seed it
// generates a synthetic corpus, checks the inverted-index engine and the
// representative builder against the brute-force oracle, runs the
// property/invariant suite over every registered estimator, and fuzzes
// the service line protocol byte-level — against a single-process
// Service AND against the cluster front-end over fake shards whose
// replicas die and revive mid-run — all deterministically, so any
// failure is replayable from its printed seed.
//
// The generated workload uses the full annotated grammar — weighted
// (`term^2.5`), negated (`-term`), and min-should-match (`MSM k`)
// queries — so every invariant and oracle check covers the extended
// semantics, and the protocol fuzzer's templates mutate the annotations
// themselves (dangling '-', malformed weights, out-of-range k).
//
//   useful_fuzz [--seed S] [--seed-count N]
//               [--mode all|oracle|invariants|protocol]
//               [--queries N] [--protocol-iters N]
//               [--soak] [--inject-bug] [--inject-bug-negation]
//               [--workdir DIR]
//
//   useful_fuzz --seed-count 500           # the PR's acceptance run
//   useful_fuzz --soak                     # run until killed or failing
//   useful_fuzz --inject-bug               # demo: must exit nonzero with
//                                          # a shrunk off-by-one repro
//   useful_fuzz --inject-bug-negation      # demo: negation sign flip is
//                                          # caught and shrunk to -term
//
// Failures print the violated property, the shrunk repro (a <=3-term
// query or a minimal protocol line), and the exact replay command; the
// exit code is 1. A clean run prints per-mode counts and exits 0.
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cluster/frontend.h"
#include "cluster/topology.h"
#include "estimate/registry.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/serialize.h"
#include "service/service.h"
#include "testing/fake_shard.h"
#include "testing/injected_bug.h"
#include "testing/invariants.h"
#include "testing/oracle.h"
#include "testing/protocol_fuzzer.h"
#include "testing/synthetic.h"
#include "text/analyzer.h"

namespace {

using namespace useful;

struct FuzzArgs {
  std::uint64_t seed = 1;
  std::size_t seed_count = 20;
  std::string mode = "all";
  std::size_t queries = 12;
  std::size_t protocol_iters = 100;
  bool soak = false;
  bool inject_bug = false;
  bool inject_bug_negation = false;
  std::string workdir;
};

struct Counters {
  std::size_t seeds = 0;
  std::size_t queries = 0;
  std::size_t estimator_checks = 0;
  std::size_t protocol_lines = 0;
};

int Fail(const FuzzArgs& args, std::uint64_t seed, const std::string& mode,
         const std::string& report) {
  std::fprintf(stderr, "FAIL seed=%llu mode=%s\n%s\n",
               static_cast<unsigned long long>(seed), mode.c_str(),
               report.c_str());
  std::fprintf(stderr,
               "replay: useful_fuzz --seed %llu --seed-count 1 --mode %s%s%s\n",
               static_cast<unsigned long long>(seed), mode.c_str(),
               args.inject_bug ? " --inject-bug" : "",
               args.inject_bug_negation ? " --inject-bug-negation" : "");
  return 1;
}

/// One seed's worth of checking. Returns 0 or the process exit code.
int RunSeed(const FuzzArgs& args, std::uint64_t seed, Counters& counters) {
  const bool do_oracle = args.mode == "all" || args.mode == "oracle";
  const bool do_invariants = args.mode == "all" || args.mode == "invariants";
  const bool do_protocol = args.mode == "all" || args.mode == "protocol";

  testing::SyntheticCorpusOptions corpus_options = testing::VaryForSeed(seed);
  corpus::Collection collection = testing::MakeSyntheticCollection(
      corpus_options, "fuzz" + std::to_string(seed));

  text::Analyzer analyzer;
  ir::SearchEngine engine(collection.name(), &analyzer);
  if (Status s = engine.AddCollection(collection); !s.ok()) {
    return Fail(args, seed, args.mode, "engine add: " + s.ToString());
  }
  if (Status s = engine.Finalize(); !s.ok()) {
    return Fail(args, seed, args.mode, "engine finalize: " + s.ToString());
  }

  testing::ExactOracle oracle(analyzer, collection);

  testing::SyntheticQueryOptions query_options;
  query_options.count = args.queries;
  // The workload exercises the full annotated grammar; the generator
  // guarantees every text parses (consistent per-term signs, in-range k).
  query_options.annotate = true;
  std::vector<ir::Query> queries;
  for (const std::string& text :
       testing::MakeSyntheticQueryTexts(corpus_options, query_options, seed)) {
    Result<ir::Query> q = ir::ParseAnnotatedQuery(analyzer, text);
    if (!q.ok()) {
      return Fail(args, seed, args.mode,
                  "generated query failed to parse: \"" + text +
                      "\": " + q.status().ToString());
    }
    if (!q.value().empty()) queries.push_back(std::move(q).value());
  }
  counters.queries += queries.size();

  auto quad = represent::BuildRepresentative(
      engine, represent::RepresentativeKind::kQuadruplet);
  auto trip = represent::BuildRepresentative(
      engine, represent::RepresentativeKind::kTriplet);
  if (!quad.ok() || !trip.ok()) {
    return Fail(args, seed, args.mode, "BuildRepresentative failed");
  }

  if (do_oracle) {
    if (auto f = testing::CheckEngineAgainstOracle(engine, oracle, queries)) {
      return Fail(args, seed, "oracle", f->ToString());
    }
    if (auto f = testing::CheckRepresentativeAgainstOracle(quad.value(), oracle)) {
      return Fail(args, seed, "oracle", f->ToString());
    }
    if (auto f = testing::CheckRepresentativeAgainstOracle(trip.value(), oracle)) {
      return Fail(args, seed, "oracle", f->ToString());
    }
  }

  if (do_invariants) {
    std::vector<std::string> names = estimate::KnownEstimators();
    names.push_back("subrange-k3");  // cover the parametrized family
    // (registry key, estimator): the key drives which invariants apply —
    // decorated name() strings are ambiguous (subrange vs subrange-nomax
    // differ only by a "[max]" marker).
    std::vector<std::pair<std::string,
                          std::unique_ptr<estimate::UsefulnessEstimator>>>
        estimators;
    for (const std::string& name : names) {
      auto made = estimate::MakeEstimator(name);
      if (!made.ok()) {
        return Fail(args, seed, "invariants",
                    "MakeEstimator(" + name + "): " + made.status().ToString());
      }
      estimators.emplace_back(name, std::move(made).value());
    }
    if (args.inject_bug) {
      estimators.emplace_back("subrange",
                              testing::MakeOffByOneSubrangeEstimator());
    }
    if (args.inject_bug_negation) {
      estimators.emplace_back("subrange",
                              testing::MakeNegationSignFlipEstimator());
    }

    for (const auto& [key, estimator] : estimators) {
      testing::InvariantOptions options;
      // The gGlOSS disjoint baseline double-counts across terms by
      // design; the paper discards it for exactly this reason.
      options.nodoc_upper_bound = key != "disjoint";
      // The paper's single-term guarantee needs a stored max weight and a
      // max subrange: the subrange family except -nomax (the injected
      // mutant registers under "subrange" so the guarantee hunts it).
      options.check_single_term_exact =
          key == "subrange" || key.rfind("subrange-k", 0) == 0;
      // Adaptive re-solves lambda = (T/r)/u per threshold, so doubling
      // one term's weight legitimately moves every term's truncation
      // point — NoDoc is not monotone in a single weight there.
      options.check_weight_monotone = key != "adaptive";

      for (const represent::Representative* rep :
           {&quad.value(), &trip.value()}) {
        counters.estimator_checks += queries.size();
        if (auto f = testing::CheckEstimator(*estimator, *rep, &oracle,
                                             queries, options)) {
          return Fail(args, seed, "invariants", f->ToString());
        }
      }
    }
  }

  if (do_protocol) {
    std::filesystem::path dir = args.workdir.empty()
        ? std::filesystem::temp_directory_path() /
              ("useful_fuzz_" + std::to_string(::getpid()))
        : std::filesystem::path(args.workdir);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string quad_path = (dir / "fuzz_quad.rep").string();
    std::string trip_path = (dir / "fuzz_trip.rep").string();
    // The service wants distinct engine names per representative file.
    represent::Representative trip_named = oracle.BuildRepresentative(
        "fuzzB", represent::RepresentativeKind::kTriplet);
    if (Status s = represent::SaveRepresentative(quad.value(), quad_path);
        !s.ok()) {
      return Fail(args, seed, "protocol", "save rep: " + s.ToString());
    }
    if (Status s = represent::SaveRepresentative(trip_named, trip_path);
        !s.ok()) {
      return Fail(args, seed, "protocol", "save rep: " + s.ToString());
    }

    service::ServiceOptions service_options;
    service_options.representative_paths = {quad_path, trip_path};
    auto service = service::Service::Create(&analyzer, service_options);
    if (!service.ok()) {
      return Fail(args, seed, "protocol",
                  "Service::Create: " + service.status().ToString());
    }

    testing::FuzzProtocolOptions fuzz_options;
    fuzz_options.seed = seed;
    fuzz_options.iterations = args.protocol_iters;
    fuzz_options.dictionary = estimate::KnownEstimators();
    fuzz_options.dictionary.push_back("subrange-k3");
    for (std::size_t r = 0; r < 4; ++r) {
      fuzz_options.dictionary.push_back(testing::SyntheticTerm(r));
    }
    counters.protocol_lines += fuzz_options.iterations;
    if (auto f = testing::FuzzProtocol(*service.value(), fuzz_options)) {
      return Fail(args, seed, "protocol", f->ToString());
    }

    // Same grammar through the cluster front-end: 2 shards x 2 replicas
    // of in-process fakes, with replicas dying (and reviving) mid-run.
    // Every reply must stay well-formed — failover within shard 0 first,
    // then the whole shard down (DEGRADED replies), then recovery; a
    // leaked kInternal or a torn frame anywhere fails the seed.
    service::ServiceOptions shard1_options;
    shard1_options.representative_paths = {trip_path};
    auto shard1 = service::Service::Create(&analyzer, shard1_options);
    if (!shard1.ok()) {
      return Fail(args, seed, "protocol",
                  "shard Service::Create: " + shard1.status().ToString());
    }
    service::Service* shard_services[2] = {service.value().get(),
                                           shard1.value().get()};
    std::atomic<bool> killed[2][2] = {{{false}, {false}}, {{false}, {false}}};

    auto spec = cluster::ParseClusterSpec("a:1,a:2|b:1,b:2");
    if (!spec.ok()) {
      return Fail(args, seed, "protocol",
                  "cluster spec: " + spec.status().ToString());
    }
    cluster::FrontendOptions frontend_options;
    frontend_options.probe_backoff_ms = 1;  // re-probe killed fakes eagerly
    cluster::Frontend frontend(
        std::move(spec).value(), frontend_options,
        [&](const cluster::Endpoint&, std::size_t shard, std::size_t replica) {
          return std::make_unique<testing::FakeShardBackend>(
              shard_services[shard], &killed[shard][replica]);
        });

    testing::FuzzProtocolOptions cluster_fuzz = fuzz_options;
    const std::size_t iters = cluster_fuzz.iterations;
    cluster_fuzz.on_iteration = [&](std::size_t i) {
      if (i == iters / 4) {
        killed[0][0].store(true);  // preferred replica dies -> failover
      } else if (i == iters / 2) {
        killed[0][1].store(true);  // whole shard 0 down -> DEGRADED
      } else if (i == (3 * iters) / 4) {
        killed[0][0].store(false);  // shard restarts -> recovery
        killed[0][1].store(false);
      }
    };
    counters.protocol_lines += cluster_fuzz.iterations;
    if (auto f = testing::FuzzProtocol(frontend, cluster_fuzz)) {
      return Fail(args, seed, "protocol", "[cluster] " + f->ToString());
    }

    if (args.workdir.empty()) std::filesystem::remove_all(dir, ec);
  }

  ++counters.seeds;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzArgs args;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed-count") == 0) {
      args.seed_count = std::strtoull(need_value("--seed-count"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      args.mode = need_value("--mode");
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      args.queries = std::strtoull(need_value("--queries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--protocol-iters") == 0) {
      args.protocol_iters =
          std::strtoull(need_value("--protocol-iters"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      args.soak = true;
    } else if (std::strcmp(argv[i], "--inject-bug") == 0) {
      args.inject_bug = true;
    } else if (std::strcmp(argv[i], "--inject-bug-negation") == 0) {
      args.inject_bug_negation = true;
    } else if (std::strcmp(argv[i], "--workdir") == 0) {
      args.workdir = need_value("--workdir");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (args.mode != "all" && args.mode != "oracle" &&
      args.mode != "invariants" && args.mode != "protocol") {
    std::fprintf(stderr, "--mode must be all|oracle|invariants|protocol\n");
    return 2;
  }

  Counters counters;
  std::uint64_t seed = args.seed;
  for (std::size_t i = 0; args.soak || i < args.seed_count; ++i, ++seed) {
    if (int rc = RunSeed(args, seed, counters); rc != 0) return rc;
    if ((i + 1) % 50 == 0 || args.soak) {
      std::printf("... %zu seeds clean (last: %llu)\n", counters.seeds,
                  static_cast<unsigned long long>(seed));
      std::fflush(stdout);
    }
  }

  std::printf(
      "OK: %zu seeds, %zu queries, %zu estimator checks, %zu protocol lines "
      "-- zero oracle mismatches, zero invariant violations, zero protocol "
      "failures\n",
      counters.seeds, counters.queries, counters.estimator_checks,
      counters.protocol_lines);
  return 0;
}
