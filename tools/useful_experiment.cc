// useful_experiment: run the paper's evaluation on any collection + query
// log from disk, with any set of estimators — the general form of the
// bench_tables_* binaries, for experimenting with real corpora.
//
//   useful_experiment --db D.trec --queries q.tsv
//       [--methods subrange,adaptive,high-correlation]
//       [--thresholds 0.1,0.2,...] [--triplet] [--quantize]
//       [--threads N]   (default: hardware concurrency; 1 = serial)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "corpus/io.h"
#include "estimate/registry.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "ir/search_engine.h"
#include "represent/builder.h"
#include "represent/quantized.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: useful_experiment --db <collection.trec> --queries <log.tsv>\n"
      "         [--methods m1,m2,...] [--thresholds t1,t2,...]\n"
      "         [--triplet] [--quantize] [--threads N]\n"
      "--threads: query-parallel evaluation; default hardware concurrency,\n"
      "           1 preserves the serial path (tables identical either way)\n"
      "methods: subrange (default), subrange-nomax, subrange-k<N>, basic,\n"
      "         adaptive, high-correlation, disjoint\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace useful;
  std::string db_path, query_path;
  std::string methods_arg = "high-correlation,adaptive,subrange";
  std::string thresholds_arg = "0.1,0.2,0.3,0.4,0.5,0.6";
  bool triplet = false, quantize = false;
  std::size_t threads = 0;  // 0: hardware concurrency

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--db") == 0) {
      db_path = need_value("--db");
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      query_path = need_value("--queries");
    } else if (std::strcmp(argv[i], "--methods") == 0) {
      methods_arg = need_value("--methods");
    } else if (std::strcmp(argv[i], "--thresholds") == 0) {
      thresholds_arg = need_value("--thresholds");
    } else if (std::strcmp(argv[i], "--triplet") == 0) {
      triplet = true;
    } else if (std::strcmp(argv[i], "--quantize") == 0) {
      quantize = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::strtoul(need_value("--threads"), nullptr, 10);
    } else {
      Usage();
      return 2;
    }
  }
  if (db_path.empty() || query_path.empty()) {
    Usage();
    return 2;
  }

  auto collection = corpus::LoadCollection(db_path);
  if (!collection.ok()) {
    std::fprintf(stderr, "db: %s\n", collection.status().ToString().c_str());
    return 1;
  }
  auto queries = corpus::LoadQueryLog(query_path);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }

  text::Analyzer analyzer;
  ir::SearchEngine engine(collection.value().name(), &analyzer);
  if (!engine.AddCollection(collection.value()).ok() ||
      !engine.Finalize().ok()) {
    std::fprintf(stderr, "indexing failed\n");
    return 1;
  }
  auto rep = represent::BuildRepresentative(
      engine, triplet ? represent::RepresentativeKind::kTriplet
                      : represent::RepresentativeKind::kQuadruplet);
  if (!rep.ok()) {
    std::fprintf(stderr, "rep: %s\n", rep.status().ToString().c_str());
    return 1;
  }
  represent::Representative working = std::move(rep).value();
  if (quantize) {
    auto q = represent::QuantizeRepresentative(working);
    if (!q.ok()) {
      std::fprintf(stderr, "quantize: %s\n", q.status().ToString().c_str());
      return 1;
    }
    working = std::move(q).value().representative;
  }

  std::vector<std::unique_ptr<estimate::UsefulnessEstimator>> estimators;
  std::vector<eval::MethodUnderTest> methods;
  for (std::string_view name : SplitNonEmpty(methods_arg, ",")) {
    auto est = estimate::MakeEstimator(std::string(name));
    if (!est.ok()) {
      std::fprintf(stderr, "%s\nregistered estimators: %s (plus the "
                   "subrange-k<N> pattern)\n",
                   est.status().ToString().c_str(),
                   Join(estimate::KnownEstimators(), ", ").c_str());
      return 2;
    }
    estimators.push_back(std::move(est).value());
    methods.push_back(eval::MethodUnderTest{estimators.back().get(),
                                            &working, std::string(name)});
  }

  eval::ExperimentConfig config;
  config.thresholds.clear();
  for (std::string_view t : SplitNonEmpty(thresholds_arg, ",")) {
    config.thresholds.push_back(std::strtod(std::string(t).c_str(), nullptr));
  }
  if (config.thresholds.empty()) {
    std::fprintf(stderr, "no thresholds\n");
    return 2;
  }
  config.threads = util::ThreadPool::ResolveThreads(threads);

  std::printf("db=%s (%zu docs, %zu terms)  queries=%zu  rep=%s%s  "
              "threads=%zu\n\n",
              engine.name().c_str(), engine.num_docs(), engine.num_terms(),
              queries.value().size(), triplet ? "triplet" : "quadruplet",
              quantize ? "+1byte" : "", config.threads);
  auto rows = eval::RunExperiment(engine, queries.value(), methods, config);
  std::printf("%s\n%s", eval::RenderMatchTable(rows).c_str(),
              eval::RenderErrorTable(rows).c_str());
  return 0;
}
