// useful_loadgen: open-loop trace replay against a useful_served (or
// useful_frontend) process. Replays a Zipfian query trace over many
// persistent connections and reports throughput plus latency
// percentiles — the serving layer's macro-benchmark and the churn
// smoke's background traffic source.
//
//   useful_loadgen --port P [--host H] [--connections N] [--qps Q]
//                  [--queries N] [--distinct D] [--zipf S] [--seed S]
//                  [--queries-file PATH] [--estimator NAME]
//                  [--threshold T] [--topk K] [--verb ESTIMATE|ROUTE]
//                  [--json PATH] [--tag NAME]
//
// Load model: the trace is a Zipf(--zipf) draw over a pool of --distinct
// query texts (taken from --queries-file, e.g. corpusgen's queries.tsv,
// or synthesized over the shared pseudo-word vocabulary when absent), so
// repeated queries exercise the server's query cache the way a real log
// would. The total --queries requests are split across --connections
// persistent connections.
//
// Pacing: with --qps Q the generator is OPEN-LOOP — request i of a
// connection is due at start + i/rate regardless of whether earlier
// replies have arrived, and each latency is measured from the request's
// *scheduled* send time to its reply. A server that falls behind
// therefore shows the queueing delay it actually inflicted
// (coordinated omission is impossible by construction), and replies are
// drained opportunistically so requests pipeline instead of waiting.
// With --qps 0 the generator is closed-loop at maximum rate: each
// connection keeps a fixed window (--pipeline) of requests in flight —
// the throughput-ceiling mode.
//
// Output: a human-readable summary on stdout and, with --json, a single
// JSON object (bench/bench_serving.sh folds it into BENCH_serving.json).
// Exit 0 on a clean run, 1 when any reply was ERR or a connection broke
// mid-run, 2 on usage/connect errors.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "testing/synthetic.h"
#include "util/histogram.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::string host = "127.0.0.1";
  unsigned long port = 0;
  std::size_t connections = 8;
  double qps = 0.0;          // 0: closed-loop at maximum rate
  std::size_t queries = 100000;
  std::size_t distinct = 1024;
  double zipf = 0.99;
  std::uint64_t seed = 1;
  std::size_t pipeline = 64;  // closed-loop window per connection
  std::string queries_file;
  std::string estimator = "subrange";
  std::string threshold = "0.1";
  std::string topk = "0";
  std::string verb = "ESTIMATE";
  std::string json_path;
  std::string tag = "loadgen";
};

/// Cumulative Zipf(s) distribution over ranks [0, n): a sampled rank is
/// the trace's next query-pool index. Heavy head = hot queries, the
/// regime the server's query cache exists for.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent) : cdf_(n) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t Sample(std::mt19937_64& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Incremental response-frame scanner: feeds on raw bytes, emits one
/// completed response (header + its payload lines) at a time. The line
/// protocol is in-order per connection, so completed responses match
/// sent requests FIFO.
class ResponseScanner {
 public:
  /// Consumes `data`; returns how many responses completed, adding 1 to
  /// *errors for each ERR header.
  std::size_t Feed(const char* data, std::size_t len, std::size_t* errors) {
    buffer_.append(data, len);
    std::size_t completed = 0;
    std::size_t pos = 0;
    for (;;) {
      std::size_t eol = buffer_.find('\n', pos);
      if (eol == std::string::npos) break;
      std::string_view line(buffer_.data() + pos, eol - pos);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      pos = eol + 1;
      if (payload_remaining_ > 0) {
        if (--payload_remaining_ == 0) ++completed;
        continue;
      }
      // Header line: "OK <n>[ DEGRADED]" or "ERR ...".
      if (line.size() >= 3 && line.substr(0, 3) == "ERR") {
        ++*errors;
        ++completed;
        continue;
      }
      std::size_t payload = 0;
      if (line.size() > 3 && line.substr(0, 3) == "OK ") {
        payload = std::strtoul(line.data() + 3, nullptr, 10);
      }
      if (payload == 0) {
        ++completed;
      } else {
        payload_remaining_ = payload;
      }
    }
    buffer_.erase(0, pos);
    return completed;
  }

 private:
  std::string buffer_;
  std::size_t payload_remaining_ = 0;
};

int ConnectTo(const std::string& host, unsigned long port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

struct WorkerResult {
  std::size_t sent = 0;
  std::size_t replies = 0;
  std::size_t errors = 0;
  bool transport_error = false;
};

/// One connection's replay loop. `requests` are pre-rendered wire lines;
/// request i is due at start + offset + i*interval (interval 0:
/// closed-loop with a `window`-deep pipeline).
void RunWorker(const Options& opt, const std::vector<std::string>* pool,
               const ZipfSampler* sampler, std::uint64_t seed,
               std::size_t count, Clock::time_point start,
               Clock::duration offset, Clock::duration interval,
               useful::util::LatencyHistogram* histogram,
               WorkerResult* result) {
  int fd = ConnectTo(opt.host, opt.port);
  if (fd < 0) {
    result->transport_error = true;
    return;
  }
  std::mt19937_64 rng(seed);
  ResponseScanner scanner;
  // Scheduled send time of each in-flight request, FIFO. Latency is
  // reply time minus *scheduled* time: a late send (server back-pressure
  // through a full socket buffer) charges the server, not the clock.
  std::deque<Clock::time_point> in_flight;
  const bool open_loop = interval.count() > 0;
  char chunk[65536];

  auto drain = [&](bool block) -> bool {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), block ? 0 : MSG_DONTWAIT);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) return true;
      result->transport_error = true;
      return false;
    }
    std::size_t completed =
        scanner.Feed(chunk, static_cast<std::size_t>(n), &result->errors);
    Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < completed && !in_flight.empty(); ++i) {
      auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
          now - in_flight.front());
      in_flight.pop_front();
      histogram->Record(
          waited.count() > 0 ? static_cast<std::uint64_t>(waited.count())
                             : 0);
      ++result->replies;
    }
    return true;
  };

  for (std::size_t i = 0; i < count; ++i) {
    if (open_loop) {
      Clock::time_point due = start + offset + interval * i;
      // Sleep to the schedule, draining whatever has already arrived.
      while (Clock::now() < due) {
        if (!drain(/*block=*/false)) goto done;
        Clock::time_point now = Clock::now();
        if (now >= due) break;
        auto remaining = due - now;
        std::this_thread::sleep_for(
            remaining < std::chrono::milliseconds(1)
                ? remaining
                : remaining - std::chrono::microseconds(200));
      }
      in_flight.push_back(due);  // scheduled, not actual, send time
    } else {
      // Closed loop: block on replies once the window is full.
      while (in_flight.size() >= opt.pipeline) {
        if (!drain(/*block=*/true)) goto done;
      }
      in_flight.push_back(Clock::now());
    }
    const std::string& line = (*pool)[sampler->Sample(rng)];
    if (!SendAll(fd, line.data(), line.size())) {
      result->transport_error = true;
      break;
    }
    ++result->sent;
    if (!drain(/*block=*/false)) break;
  }
  while (!in_flight.empty() && !result->transport_error) {
    if (!drain(/*block=*/true)) break;
  }
done:
  ::close(fd);
}

std::vector<std::string> LoadQueryPool(const Options& opt) {
  std::vector<std::string> texts;
  if (!opt.queries_file.empty()) {
    std::ifstream in(opt.queries_file);
    std::string line;
    while (texts.size() < opt.distinct && std::getline(in, line)) {
      // queries.tsv rows are "id<TAB>text"; bare text files work too.
      std::size_t tab = line.find('\t');
      std::string text = tab == std::string::npos ? line : line.substr(tab + 1);
      if (!text.empty()) texts.push_back(text);
    }
  }
  if (texts.empty()) {
    useful::testing::SyntheticCorpusOptions corpus;
    corpus.vocab_size = 96;
    useful::testing::SyntheticQueryOptions queries;
    queries.count = opt.distinct;
    texts = useful::testing::MakeSyntheticQueryTexts(corpus, queries,
                                                     opt.seed);
  }
  return texts;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      opt.host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      opt.port = std::strtoul(need_value("--port"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--connections") == 0) {
      opt.connections = std::strtoul(need_value("--connections"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--qps") == 0) {
      opt.qps = std::strtod(need_value("--qps"), nullptr);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      opt.queries = std::strtoul(need_value("--queries"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--distinct") == 0) {
      opt.distinct = std::strtoul(need_value("--distinct"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--zipf") == 0) {
      opt.zipf = std::strtod(need_value("--zipf"), nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      opt.pipeline = std::strtoul(need_value("--pipeline"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries-file") == 0) {
      opt.queries_file = need_value("--queries-file");
    } else if (std::strcmp(argv[i], "--estimator") == 0) {
      opt.estimator = need_value("--estimator");
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      opt.threshold = need_value("--threshold");
    } else if (std::strcmp(argv[i], "--topk") == 0) {
      opt.topk = need_value("--topk");
    } else if (std::strcmp(argv[i], "--verb") == 0) {
      opt.verb = need_value("--verb");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = need_value("--json");
    } else if (std::strcmp(argv[i], "--tag") == 0) {
      opt.tag = need_value("--tag");
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.port == 0 || opt.port > 65535 || opt.connections == 0 ||
      opt.queries == 0 || opt.distinct == 0 || opt.pipeline == 0 ||
      (opt.verb != "ESTIMATE" && opt.verb != "ROUTE")) {
    std::fprintf(
        stderr,
        "usage: useful_loadgen --port P [--host H] [--connections N] "
        "[--qps Q] [--queries N] [--distinct D] [--zipf S] [--seed S] "
        "[--pipeline W] [--queries-file PATH] [--estimator NAME] "
        "[--threshold T] [--topk K] [--verb ESTIMATE|ROUTE] "
        "[--json PATH] [--tag NAME]\n");
    return 2;
  }

  std::vector<std::string> texts = LoadQueryPool(opt);
  if (texts.empty()) {
    std::fprintf(stderr, "empty query pool (bad --queries-file?)\n");
    return 2;
  }
  // Pre-render the wire lines once: the replay loop only samples + sends.
  std::vector<std::string> pool;
  pool.reserve(texts.size());
  for (const std::string& text : texts) {
    std::string line = opt.verb + " " + opt.estimator + " " + opt.threshold;
    if (opt.verb == "ROUTE") line += " " + opt.topk;
    line += " " + text + "\n";
    pool.push_back(std::move(line));
  }
  ZipfSampler sampler(pool.size(), opt.zipf);

  useful::util::LatencyHistogram histogram;
  std::vector<WorkerResult> results(opt.connections);
  std::vector<std::thread> workers;
  Clock::duration interval{0};
  if (opt.qps > 0.0) {
    interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(opt.connections / opt.qps));
  }
  Clock::time_point start = Clock::now() + std::chrono::milliseconds(5);
  for (std::size_t c = 0; c < opt.connections; ++c) {
    std::size_t count = opt.queries / opt.connections +
                        (c < opt.queries % opt.connections ? 1 : 0);
    // Stagger connection c by c/qps so the aggregate arrival process is
    // uniform at --qps, not `connections` synchronized bursts.
    Clock::duration offset =
        opt.qps > 0.0 ? std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(c / opt.qps))
                      : Clock::duration{0};
    workers.emplace_back(RunWorker, std::cref(opt), &pool, &sampler,
                         opt.seed * 0x9e3779b97f4a7c15ULL + c, count, start,
                         offset, interval, &histogram, &results[c]);
  }
  for (std::thread& t : workers) t.join();
  double elapsed = std::chrono::duration<double>(Clock::now() - start).count();

  std::size_t sent = 0, replies = 0, errors = 0;
  bool transport_error = false;
  for (const WorkerResult& r : results) {
    sent += r.sent;
    replies += r.replies;
    errors += r.errors;
    transport_error = transport_error || r.transport_error;
  }
  double achieved_qps = elapsed > 0.0 ? replies / elapsed : 0.0;
  double p50 = histogram.ValueAtPercentile(50);
  double p95 = histogram.ValueAtPercentile(95);
  double p99 = histogram.ValueAtPercentile(99);
  double p999 = histogram.ValueAtPercentile(99.9);

  std::printf(
      "loadgen %s: mode=%s sent=%zu replies=%zu errors=%zu elapsed_s=%.3f "
      "qps=%.0f\n",
      opt.tag.c_str(), opt.qps > 0.0 ? "open-loop" : "closed-loop", sent,
      replies, errors, elapsed, achieved_qps);
  std::printf(
      "latency_us: p50=%.0f p95=%.0f p99=%.0f p999=%.0f max=%llu "
      "mean=%.1f\n",
      p50, p95, p99, p999,
      static_cast<unsigned long long>(histogram.max()), histogram.mean());

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opt.json_path.c_str());
      return 2;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"tag\": \"%s\",\n"
        "  \"mode\": \"%s\",\n"
        "  \"verb\": \"%s\",\n"
        "  \"estimator\": \"%s\",\n"
        "  \"connections\": %zu,\n"
        "  \"target_qps\": %.0f,\n"
        "  \"distinct\": %zu,\n"
        "  \"zipf\": %g,\n"
        "  \"sent\": %zu,\n"
        "  \"replies\": %zu,\n"
        "  \"errors\": %zu,\n"
        "  \"elapsed_s\": %.3f,\n"
        "  \"achieved_qps\": %.0f,\n"
        "  \"p50_us\": %.0f,\n"
        "  \"p95_us\": %.0f,\n"
        "  \"p99_us\": %.0f,\n"
        "  \"p999_us\": %.0f,\n"
        "  \"max_us\": %llu,\n"
        "  \"mean_us\": %.1f\n"
        "}\n",
        opt.tag.c_str(), opt.qps > 0.0 ? "open-loop" : "closed-loop",
        opt.verb.c_str(), opt.estimator.c_str(), opt.connections, opt.qps,
        opt.distinct, opt.zipf, sent, replies, errors, elapsed, achieved_qps,
        p50, p95, p99, p999,
        static_cast<unsigned long long>(histogram.max()), histogram.mean());
    std::fclose(f);
  }

  if (transport_error) {
    std::fprintf(stderr, "loadgen: a connection failed mid-run\n");
    return 1;
  }
  return errors > 0 ? 1 : 0;
}
