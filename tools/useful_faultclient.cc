// useful_faultclient: a deliberately badly-behaved client for exercising
// the serving layer's hardening paths. Each mode injects one class of
// fault against a running useful_served and prints what the server did,
// so smoke scripts can assert the defense fired:
//
//   --mode halfopen   connect, send nothing, wait — expects the idle
//                     timeout to disconnect us ("closed ...").
//   --mode slowloris  trickle a request line one byte at a time without
//                     ever finishing it — expects the request timeout to
//                     cut us off mid-write.
//   --mode midclose   send half a request line and disconnect — the
//                     server must just reclaim the connection.
//   --mode flood      open --count concurrent idle connections at once —
//                     expects connections beyond the server's limits to
//                     be shed with "ERR Unavailable: overloaded ...".
//                     With --pipeline N the success criterion flips to
//                     the C10K one: every connection must be HELD (none
//                     shed or dropped), and while they all sit idle a
//                     fresh client pipelining N requests in one write
//                     must get N in-order OK answers — proof that idle
//                     connections cost the server no execution resources.
//
//   useful_faultclient --port P --mode M [--count N] [--delay-ms D]
//                      [--timeout-ms T] [--pipeline N]
//
// Exits 0 when the server exhibited the expected defense, 1 when it did
// not (e.g. a half-open peer was never disconnected), 2 on usage errors.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

using Clock = std::chrono::steady_clock;

int Connect(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads until EOF or `timeout_ms`, appending to *out. Returns true when
/// the peer closed the connection within the deadline.
bool ReadUntilClose(int fd, int timeout_ms, std::string* out) {
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  char chunk[4096];
  for (;;) {
    int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count());
    if (remaining <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, remaining);
    if (ready <= 0) continue;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return true;  // EOF (or reset): server dropped us
    out->append(chunk, static_cast<std::size_t>(n));
  }
}

int RunHalfOpen(const std::string& host, std::uint16_t port,
                int timeout_ms) {
  int fd = Connect(host, port);
  if (fd < 0) {
    std::perror("connect");
    return 2;
  }
  Clock::time_point start = Clock::now();
  std::string received;
  bool closed = ReadUntilClose(fd, timeout_ms, &received);
  ::close(fd);
  if (!closed) {
    std::printf("halfopen: still connected after %d ms\n", timeout_ms);
    return 1;
  }
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - start)
                .count();
  std::printf("halfopen: closed by server after %lld ms (%s)\n",
              static_cast<long long>(ms),
              received.empty() ? "no data" : received.c_str());
  return 0;
}

int RunSlowLoris(const std::string& host, std::uint16_t port, int delay_ms,
                 int timeout_ms) {
  int fd = Connect(host, port);
  if (fd < 0) {
    std::perror("connect");
    return 2;
  }
  const std::string request = "ROUTE subrange 0.2 0 never finished";
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t written = 0;
  bool cut_off = false;
  // Never send the newline: keep the request eternally partial, one byte
  // per delay, looping over the body until the server gives up on us.
  while (Clock::now() < deadline) {
    char byte = request[written % request.size()];
    ssize_t n = ::send(fd, &byte, 1, MSG_NOSIGNAL);
    if (n <= 0) {
      cut_off = true;
      break;
    }
    ++written;
    std::string received;
    if (ReadUntilClose(fd, delay_ms, &received)) {
      std::printf("slowloris: closed by server after %zu bytes (%s)\n",
                  written, received.empty() ? "no data" : received.c_str());
      ::close(fd);
      return 0;
    }
  }
  ::close(fd);
  if (cut_off) {
    std::printf("slowloris: send failed after %zu bytes (reset)\n", written);
    return 0;
  }
  std::printf("slowloris: still connected after %d ms (%zu bytes)\n",
              timeout_ms, written);
  return 1;
}

int RunMidClose(const std::string& host, std::uint16_t port) {
  int fd = Connect(host, port);
  if (fd < 0) {
    std::perror("connect");
    return 2;
  }
  const char partial[] = "ROUTE subrange 0.2";  // no newline: mid-request
  (void)::send(fd, partial, sizeof(partial) - 1, MSG_NOSIGNAL);
  ::close(fd);
  std::printf("midclose: sent partial request and disconnected\n");
  return 0;
}

/// Non-blocking probe of an idle connection: 0 = still held open,
/// 1 = shed ("overloaded" arrived), 2 = closed/errored some other way.
int ProbeIdle(int fd) {
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
  if (n > 0 &&
      std::string(buf, static_cast<std::size_t>(n)).find("overloaded") !=
          std::string::npos) {
    return 1;
  }
  return 2;
}

/// Sends `pipeline` ROUTE requests in one write and reads the replies.
/// Returns the number of in-order OK answers received before `timeout_ms`.
int RunPipelinedProbe(const std::string& host, std::uint16_t port,
                      int pipeline, int timeout_ms) {
  int fd = Connect(host, port);
  if (fd < 0) return 0;
  std::string batch;
  for (int i = 0; i < pipeline; ++i) {
    batch += "ROUTE subrange 0.1 0 football stadium\n";
  }
  std::size_t sent = 0;
  while (sent < batch.size()) {
    ssize_t n = ::send(fd, batch.data() + sent, batch.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return 0;
    }
    sent += static_cast<std::size_t>(n);
  }
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string buffer;
  char chunk[8192];
  int answered = 0;
  std::size_t consumed = 0;
  long payload_remaining = 0;
  while (answered < pipeline) {
    std::size_t pos;
    while ((pos = buffer.find('\n', consumed)) != std::string::npos &&
           answered < pipeline) {
      std::string line = buffer.substr(consumed, pos - consumed);
      consumed = pos + 1;
      if (payload_remaining > 0) {
        --payload_remaining;
        continue;
      }
      if (line.rfind("OK ", 0) == 0) {
        ++answered;
        payload_remaining = std::strtol(line.c_str() + 3, nullptr, 10);
      } else {
        ::close(fd);  // ERR or garbage: the probe failed
        return answered;
      }
    }
    if (answered >= pipeline) break;
    int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count());
    if (remaining <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, remaining) <= 0) continue;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return answered;
}

int RunFlood(const std::string& host, std::uint16_t port, int count,
             int pipeline, int timeout_ms) {
  std::vector<int> fds;
  for (int i = 0; i < count; ++i) {
    int fd = Connect(host, port);
    if (fd < 0) break;
    fds.push_back(fd);
  }

  if (pipeline > 0) {
    // C10K criterion: everyone is held, and the server still answers.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int shed = 0, dropped = 0, held = 0;
    std::vector<int> live;
    for (int fd : fds) {
      switch (ProbeIdle(fd)) {
        case 0:
          ++held;
          live.push_back(fd);
          break;
        case 1:
          ++shed;
          ::close(fd);
          break;
        default:
          ++dropped;
          ::close(fd);
          break;
      }
    }
    int answered = RunPipelinedProbe(host, port, pipeline, timeout_ms);
    // The idle fleet must have survived the whole probe, not just the
    // first 100 ms.
    int still_held = 0;
    for (int fd : live) {
      if (ProbeIdle(fd) == 0) ++still_held;
      ::close(fd);
    }
    std::printf(
        "flood: opened %zu shed %d dropped %d held %d still_held %d "
        "pipelined %d/%d\n",
        fds.size(), shed, dropped, held, still_held, answered, pipeline);
    bool ok = fds.size() == static_cast<std::size_t>(count) && shed == 0 &&
              dropped == 0 && still_held == count && answered == pipeline;
    return ok ? 0 : 1;
  }

  int shed = 0, dropped = 0, held = 0;
  for (int fd : fds) {
    std::string received;
    bool closed = ReadUntilClose(fd, timeout_ms, &received);
    if (received.find("overloaded") != std::string::npos) {
      ++shed;
    } else if (closed) {
      ++dropped;  // accepted, then idle-timed-out or drained at shutdown
    } else {
      ++held;  // still connected (accepted and within its idle budget)
    }
    ::close(fd);
  }
  std::printf("flood: opened %zu shed %d dropped %d held %d\n", fds.size(),
              shed, dropped, held);
  // The flood "succeeds" when the server pushed back on at least one
  // connection instead of queueing everything.
  return shed > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string mode;
  unsigned long port = 0;
  int count = 16;
  int delay_ms = 20;
  int timeout_ms = 10'000;
  int pipeline = 0;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = need_value("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::strtoul(need_value("--port"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      mode = need_value("--mode");
    } else if (std::strcmp(argv[i], "--count") == 0) {
      count = static_cast<int>(std::strtol(need_value("--count"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--delay-ms") == 0) {
      delay_ms =
          static_cast<int>(std::strtol(need_value("--delay-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      timeout_ms = static_cast<int>(
          std::strtol(need_value("--timeout-ms"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      pipeline = static_cast<int>(
          std::strtol(need_value("--pipeline"), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (port == 0 || port > 65535 || mode.empty()) {
    std::fprintf(stderr,
                 "usage: useful_faultclient --port P --mode "
                 "halfopen|slowloris|midclose|flood [--host H] [--count N] "
                 "[--delay-ms D] [--timeout-ms T] [--pipeline N]\n");
    return 2;
  }

  std::uint16_t p = static_cast<std::uint16_t>(port);
  if (mode == "halfopen") return RunHalfOpen(host, p, timeout_ms);
  if (mode == "slowloris") return RunSlowLoris(host, p, delay_ms, timeout_ms);
  if (mode == "midclose") return RunMidClose(host, p);
  if (mode == "flood") return RunFlood(host, p, count, pipeline, timeout_ms);
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  return 2;
}
